"""flashlint — FLASH-model misuse rules over the static access-set IR.

Every rule reads the same :class:`~repro.analysis.staticpass.program.ProgramCapture`
the engine's static pass produces, so linting a program is exactly:
run it once on a small graph under :func:`capture_program` and evaluate
the rules.  ``repro lint <app|--all>`` does that for the shipped
applications; tests do it for synthetic kernels.

Rule catalog (see ``docs/static_analysis.md`` for the full walkthrough):

=======================  ========  ==================================================
rule id                  severity  fires when
=======================  ========  ==================================================
write-to-source          error     an edge kernel writes a source-role property, or
                                   any kernel writes through a read-only ``get`` view
unguarded-target-write   warning   an edge kernel writes the target in ``F`` or ``C``
                                   (outside the condition-guarded map path ``M``)
read-never-written       error /   a kernel reads a property no engine ever declared
                         warning   (error), or one that is declared with a ``None``
                                   default and never written by any kernel (warning)
noncommutative-reduce    warning   ``R`` combines its two temps with a
                                   non-commutative operator, or returns its first
                                   temp unchanged (arrival order decides the result)
                                   — suppressed when the kernel's registered spec
                                   declares ``reduce="last"`` (the order dependence
                                   is then the documented contract)
global-mutation          error     a user function mutates captured enclosing-scope
                                   or module state instead of using ``bind``
unsynced-read            warning   a kernel's analysis is incomplete (no recoverable
                                   source, or a role escaping resolution), so reads
                                   may observe unsynced mirror state; the engine
                                   falls back to the runtime sample tracer for it
sync-of-never-written    error     a property is classified critical (mirror-synced)
                                   but no kernel ever writes it and its default is
                                   ``None`` — every sync ships a value that cannot
                                   exist, so the read is a latent typo
cross-partition-         error     a sparse kernel writes a target property its
unplanned-write                    classification did not mark critical — the
                                   cross-partition write would never be synced back
=======================  ========  ==================================================

Severities: *errors* are model violations that break on a real cluster
(the simulator often masks them because property storage is physically
shared); *warnings* are either order-dependent results or soundness
fallbacks.  ``repro lint`` exits non-zero only on errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.staticpass.ir import FunctionAccess, KernelAccess
from repro.analysis.staticpass.program import ProgramCapture, capture_program

ERROR = "error"
WARNING = "warning"

#: rule id -> (default severity, one-line description) — the catalog
#: rendered by ``repro lint --rules`` and the docs.
RULES: Dict[str, tuple] = {
    "write-to-source": (
        ERROR,
        "edge kernels must not write source-role properties or get views "
        "(mirror writes are discarded / rejected on a real cluster)",
    ),
    "unguarded-target-write": (
        WARNING,
        "target writes belong in M, the condition-guarded map path; "
        "writes staged in F or C can commit even when M never ran",
    ),
    "read-never-written": (
        ERROR,
        "reading a property that is never declared (error) or never "
        "written and defaulted to None (warning) — likely a typo",
    ),
    "noncommutative-reduce": (
        WARNING,
        "R must be associative and commutative (§III-A); order-sensitive "
        "reduces give partition-dependent results",
    ),
    "global-mutation": (
        ERROR,
        "user functions must not mutate captured globals — pass values "
        "through bind() or vertex properties instead",
    ),
    "unsynced-read": (
        WARNING,
        "the static pass could not fully analyze this kernel; reads may "
        "touch unsynced mirror state and the runtime tracer takes over",
    ),
    "sync-of-never-written": (
        ERROR,
        "a critical (mirror-synced) property is never written by any "
        "kernel and defaults to None — the sync traffic is provably "
        "useless and the read is a latent typo",
    ),
    "cross-partition-unplanned-write": (
        ERROR,
        "a sparse kernel writes a target property outside its planned "
        "sync set — the cross-partition write would never reach the "
        "owner on a real cluster",
    ),
}

#: ``repro lint --json`` payload schema.  Bump on any breaking change to
#: the summarize() structure; additions of new keys are non-breaking.
SCHEMA_VERSION = "1"

_EDGE_KINDS = ("edge_map_dense", "edge_map_sparse")


@dataclass
class Finding:
    """One lint diagnostic."""

    rule: str
    severity: str
    message: str
    app: str = ""
    kernel: str = ""
    location: str = ""

    def describe(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "app": self.app,
            "kernel": self.kernel,
            "location": self.location,
        }

    def render(self) -> str:
        prefix = f"{self.app}: " if self.app else ""
        where = f" [{self.kernel}]" if self.kernel else ""
        loc = f" ({self.location})" if self.location else ""
        return f"{prefix}{self.severity}: {self.rule}{where}: {self.message}{loc}"


def _kernel_name(kind: str, label: str) -> str:
    return f"{kind}:{label}" if label else kind


def _slot_findings(
    kind: str,
    kernel: str,
    slot: str,
    fa: FunctionAccess,
    app: str,
    reduce_last: bool = False,
) -> List[Finding]:
    out: List[Finding] = []
    if kind in _EDGE_KINDS:
        src_writes = fa.role_writes("source")
        if src_writes:
            out.append(Finding(
                "write-to-source", ERROR,
                f"{slot} writes source propert{'ies' if len(src_writes) > 1 else 'y'} "
                + ", ".join(sorted(src_writes)),
                app=app, kernel=kernel, location=fa.location,
            ))
        if slot in ("F", "C"):
            tgt_writes = fa.role_writes("target")
            if tgt_writes:
                out.append(Finding(
                    "unguarded-target-write", WARNING,
                    f"{slot} stages target write(s) to "
                    + ", ".join(sorted(tgt_writes))
                    + " outside the M path",
                    app=app, kernel=kernel, location=fa.location,
                ))
    if fa.remote_writes:
        out.append(Finding(
            "write-to-source", ERROR,
            f"{slot} writes through a read-only engine.get view: "
            + ", ".join(sorted(fa.remote_writes)),
            app=app, kernel=kernel, location=fa.location,
        ))
    if fa.mutated_globals:
        out.append(Finding(
            "global-mutation", ERROR,
            f"{slot} mutates captured name(s) "
            + ", ".join(sorted(fa.mutated_globals))
            + " — use bind() or a vertex property",
            app=app, kernel=kernel, location=fa.location,
        ))
    if slot == "R":
        if fa.noncomm_writes:
            out.append(Finding(
                "noncommutative-reduce", WARNING,
                "R combines temps with a non-commutative operator on "
                + ", ".join(sorted(fa.noncomm_writes)),
                app=app, kernel=kernel, location=fa.location,
            ))
        elif fa.returns_param == 0 and not fa.writes and not reduce_last:
            # A registered spec declaring reduce="last" makes the order
            # dependence the kernel's documented contract — the
            # vectorized path reproduces it deterministically, so the
            # warning would only be noise.
            out.append(Finding(
                "noncommutative-reduce", WARNING,
                "R returns its first temp unchanged — the reduce result "
                "depends on arrival order",
                app=app, kernel=kernel, location=fa.location,
            ))
    return out


def _kernel_findings(
    kind: str,
    kernel: str,
    access: KernelAccess,
    app: str,
    spec=None,
    critical: Optional[Set[str]] = None,
) -> List[Finding]:
    reduce_last = getattr(spec, "reduce", None) == "last"
    out: List[Finding] = []
    for slot, fa in access.slots.items():
        if fa is not None:
            out.extend(_slot_findings(
                kind, kernel, slot, fa, app, reduce_last=reduce_last
            ))
    if not access.complete:
        incomplete = sorted(
            slot for slot, fa in access.slots.items()
            if fa is not None and not fa.complete
        )
        out.append(Finding(
            "unsynced-read", WARNING,
            "analysis incomplete for slot(s) " + ", ".join(incomplete)
            + " — possible unsynced mirror reads; runtime tracer takes over",
            app=app, kernel=kernel,
        ))
    if kind == "edge_map_sparse" and access.complete and critical is not None:
        # Every sparse target write crosses partitions (the source-side
        # worker stages it, the target's owner must receive it), so it
        # must be in the kernel's planned sync set — Table II puts it
        # there automatically; anything else is a planner/analyzer
        # inconsistency that would silently drop writes on a cluster.
        unplanned = {p for r, p in access.writes if r == "target"} - critical
        for prop in sorted(unplanned):
            out.append(Finding(
                "cross-partition-unplanned-write", ERROR,
                f"sparse kernel writes target property {prop!r} that its "
                "classification does not plan to sync",
                app=app, kernel=kernel,
            ))
    return out


def _program_findings(capture: ProgramCapture, app: str) -> List[Finding]:
    """Program-level rules, grouped per engine so nested engines (BC,
    SCC, BCC phases) do not cross-contaminate."""
    out: List[Finding] = []
    for _, reports in capture.by_engine().items():
        declared: Set[str] = set()
        initialized: Set[str] = set()
        written: Set[str] = set()
        complete = True
        for report in reports:
            declared |= report.declared
            initialized |= report.initialized
            written |= {p for _, p in report.classification.access.writes}
            written |= report.classification.access.remote_writes
            complete = complete and report.classification.complete
        if not complete:
            # With an unanalyzed slot in the mix the write set is not
            # trustworthy — stay silent rather than guess.
            continue
        flagged: Set[str] = set()
        for report in reports:
            access = report.classification.access
            kernel = _kernel_name(report.kind, report.label)
            read_props = {p for _, p in access.reads} | access.remote_reads
            for prop in sorted(read_props - flagged):
                if prop not in declared:
                    flagged.add(prop)
                    out.append(Finding(
                        "read-never-written", ERROR,
                        f"reads property {prop!r} that no engine declares "
                        "— likely a typo",
                        app=app, kernel=kernel,
                    ))
                elif prop not in written and prop not in initialized:
                    flagged.add(prop)
                    out.append(Finding(
                        "read-never-written", WARNING,
                        f"reads property {prop!r} that is never written and "
                        "defaults to None",
                        app=app, kernel=kernel,
                    ))
        # sync-of-never-written: a property some kernel's classification
        # marks critical — i.e. the executor will spend mirror-sync
        # traffic on it every barrier — that no kernel ever writes and
        # whose default is None.  The mirrors can only ever receive the
        # value they already hold, so the sync is provably useless and
        # the critical-making read is almost certainly a typo.
        synced_flagged: Set[str] = set()
        for report in reports:
            kernel = _kernel_name(report.kind, report.label)
            for prop in sorted(report.classification.critical):
                if prop in synced_flagged or prop not in declared:
                    continue
                if prop not in written and prop not in initialized:
                    synced_flagged.add(prop)
                    out.append(Finding(
                        "sync-of-never-written", ERROR,
                        f"property {prop!r} is mirror-synced for this "
                        "kernel but never written by any kernel and "
                        "defaults to None",
                        app=app, kernel=kernel,
                    ))
    return out


def lint_capture(capture: ProgramCapture, app: str = "") -> List[Finding]:
    """Evaluate every rule over one captured program."""
    findings: List[Finding] = []
    for report in capture.reports:
        findings.extend(_kernel_findings(
            report.kind,
            _kernel_name(report.kind, report.label),
            report.classification.access,
            app,
            spec=report.spec,
            critical=set(report.classification.critical),
        ))
    findings.extend(_program_findings(capture, app))
    # Deterministic order: errors first, then by rule/kernel/message.
    findings.sort(key=lambda f: (f.severity != ERROR, f.rule, f.kernel, f.message))
    return findings


# ---------------------------------------------------------------------------
# Linting shipped applications
# ---------------------------------------------------------------------------
def _lint_graph(app: str):
    """A small deterministic input adapted to the app's requirements."""
    from repro import load_dataset
    from repro.graph.generators import random_graph
    from repro.suite import DIRECTED_APPS, prepare_graph

    if app in DIRECTED_APPS:
        graph = load_dataset("OR", scale=0.05, directed=True)
    else:
        graph = random_graph(24, 64, seed=5)
    return prepare_graph(app, graph)


def lint_app(app: str, num_workers: int = 2) -> List[Finding]:
    """Run every FLASH variant of ``app`` on a small graph under a
    program capture and lint the result."""
    from repro.suite import _FLASH_VARIANTS, APPS

    if app not in APPS:
        raise ValueError(f"unknown app {app!r}; expected one of {APPS}")
    graph = _lint_graph(app)
    with capture_program() as capture:
        for variant in _FLASH_VARIANTS[app]:
            variant(graph, num_workers)
    return lint_capture(capture, app=app)


def lint_apps(apps: Optional[Sequence[str]] = None) -> Dict[str, List[Finding]]:
    """Lint several apps (default: the whole 14-app suite)."""
    from repro.suite import APPS

    out: Dict[str, List[Finding]] = {}
    for app in (apps or APPS):
        out[app] = lint_app(app)
    return out


def summarize(findings_by_app: Dict[str, List[Finding]]) -> dict:
    """The machine-readable payload of ``repro lint --json``.

    Deterministic: apps and the rule catalog are sorted by name, and
    findings are listed app by app in that order (within one app they
    carry ``lint_capture``'s severity/rule/kernel/message order).  The
    payload is versioned by ``schema_version``."""
    apps = sorted(findings_by_app)
    all_findings = [f for app in apps for f in findings_by_app[app]]
    return {
        "schema_version": SCHEMA_VERSION,
        "apps": apps,
        "errors": sum(1 for f in all_findings if f.severity == ERROR),
        "warnings": sum(1 for f in all_findings if f.severity == WARNING),
        "findings": [f.describe() for f in all_findings],
        "rules": {
            rule: {"severity": sev, "description": desc}
            for rule in sorted(RULES)
            for sev, desc in [RULES[rule]]
        },
    }
