"""Access-set IR of the ahead-of-time static analyzer.

The analyzer (:mod:`repro.analysis.staticpass.analyzer`) turns every
user function of a FLASH kernel into a :class:`FunctionAccess` — the
set of vertex-property reads and writes it can perform on **any**
control-flow path, attributed to the *role* each vertex argument plays
in the kernel (``source`` / ``target`` / ``self``).  A kernel's
functions combine into a :class:`KernelAccess`, the unit Table II
classification (:mod:`repro.analysis.staticpass.tableii`), spec
validation and the :mod:`repro.analysis.staticpass.lint` rules all
operate on.

Unlike the sample tracer in :mod:`repro.core.analysis`, which observes
one concrete path per superstep, the IR is a *may*-analysis: an access
that happens on any branch is in the set.  Over-approximation is safe —
a property synced without need costs messages, a property missed costs
correctness — which is what "sound critical-property inference" means
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

#: Vertex-argument roles (paper §IV-B): the source / target of an edge
#: function, or the single vertex of a VERTEXMAP function.
ROLES = ("source", "target", "self")

#: Kernel kinds the classification distinguishes (Table II rows).
KERNEL_KINDS = ("vertex_map", "edge_map_dense", "edge_map_sparse")

#: The kernel's user-function slots, in engine argument order.
SLOTS = ("C", "F", "M", "R")

#: One (role, property) access.
Access = Tuple[str, str]


@dataclass
class FunctionAccess:
    """All property accesses one user function may perform."""

    name: str = "<unknown>"
    filename: str = ""
    lineno: int = 0
    #: Parameter names bound to vertex roles, in order.
    param_names: Tuple[str, ...] = ()
    #: (role, property) pairs that may be read / written on any path.
    reads: Set[Access] = field(default_factory=set)
    writes: Set[Access] = field(default_factory=set)
    #: Properties read through ``engine.get(...)`` views — reads of an
    #: arbitrary (possibly remote) vertex, critical in every kernel kind.
    remote_reads: Set[str] = field(default_factory=set)
    #: Properties written through ``engine.get(...)`` views (a model
    #: violation — the view is read-only at runtime).
    remote_writes: Set[str] = field(default_factory=set)
    #: Roles whose accesses could not be fully resolved (dynamic
    #: ``getattr`` with a non-literal name, the whole view escaping into
    #: an unresolvable callee, ...).  Any entry makes the kernel's
    #: classification incomplete.
    unknown_roles: Set[str] = field(default_factory=set)
    #: True when no source/AST was recoverable at all.
    unanalyzable: bool = False
    #: Captured (free or module-global) names the function mutates —
    #: rebinding via ``global``/``nonlocal`` or in-place mutation calls.
    mutated_globals: Set[str] = field(default_factory=set)
    #: Index of the bare parameter returned by a ``return <param>``
    #: statement, if any (reduce-order sensitivity: ``return t`` picks
    #: whichever temp arrives first).
    returns_param: Optional[int] = None
    #: Properties assigned from a non-commutative binary expression over
    #: two *same-role* parameters (only meaningful for ``R``, whose two
    #: parameters are both the target).
    noncomm_writes: Set[str] = field(default_factory=set)
    #: Writes to a role parameter inside this function keyed by role —
    #: mirrors ``writes`` but kept per slot for the lint rules.

    # -- set algebra helpers -------------------------------------------
    def role_reads(self, role: str) -> Set[str]:
        return {p for r, p in self.reads if r == role}

    def role_writes(self, role: str) -> Set[str]:
        return {p for r, p in self.writes if r == role}

    @property
    def complete(self) -> bool:
        return not self.unanalyzable and not self.unknown_roles

    @property
    def location(self) -> str:
        if not self.filename:
            return self.name
        return f"{self.name} ({self.filename}:{self.lineno})"


@dataclass
class KernelAccess:
    """The combined access sets of one kernel's F/M/C/R functions."""

    kind: str
    #: Slot name -> FunctionAccess (``None`` for omitted slots).
    slots: Dict[str, Optional[FunctionAccess]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {self.kind!r}")

    # -- aggregates ----------------------------------------------------
    def _union(self, attr: str) -> Set:
        out: Set = set()
        for fa in self.slots.values():
            if fa is not None:
                out |= getattr(fa, attr)
        return out

    @property
    def reads(self) -> Set[Access]:
        return self._union("reads")

    @property
    def writes(self) -> Set[Access]:
        return self._union("writes")

    @property
    def remote_reads(self) -> Set[str]:
        return self._union("remote_reads")

    @property
    def remote_writes(self) -> Set[str]:
        return self._union("remote_writes")

    @property
    def unknown_roles(self) -> Set[str]:
        return self._union("unknown_roles")

    @property
    def complete(self) -> bool:
        """Whether every present slot was fully analyzed — only then is
        the static classification sound on its own (otherwise the engine
        keeps the sample tracer as a safety net for this kernel)."""
        return all(fa is None or fa.complete for fa in self.slots.values())

    @property
    def seen(self) -> Set[str]:
        """Every property the kernel may touch (Table II's input set)."""
        props = {p for _, p in self.reads | self.writes}
        return props | self.remote_reads | self.remote_writes

    def describe(self) -> Dict[str, object]:
        """JSON-friendly dump (the ``repro lint --json`` payload)."""
        return {
            "kind": self.kind,
            "complete": self.complete,
            "reads": sorted(f"{r}.{p}" for r, p in self.reads),
            "writes": sorted(f"{r}.{p}" for r, p in self.writes),
            "remote_reads": sorted(self.remote_reads),
            "functions": {
                slot: (fa.location if fa is not None else None)
                for slot, fa in self.slots.items()
            },
        }


#: Frozen empty access — shared placeholder for omitted slots.
EMPTY_ACCESS: FrozenSet = frozenset()
