"""Table II over static access sets (paper §IV-B/§IV-C).

The classification itself is the same one :func:`repro.core.analysis.classify_events`
applies to runtime traces — a property is *critical* iff it is

* read as the **source** property of an ``EDGEMAPDENSE``, or
* read/written as the **target** property of an ``EDGEMAPSPARSE``

— but applied to the analyzer's *may*-sets instead of a single observed
path, so branch-dependent accesses are covered ahead of time.  Reads
through FLASHWARE's ``get`` views reach arbitrary (possibly remote)
vertices and are critical in every kernel kind, which is the verdict the
runtime promotion fallback (:class:`repro.core.engine._RemoteGetView`)
reaches lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.analysis.staticpass.ir import KERNEL_KINDS, KernelAccess


@dataclass
class StaticClassification:
    """The ahead-of-time verdict for one kernel."""

    kind: str
    access: KernelAccess
    #: Properties that must be synced to mirrors (Table II + remote gets).
    critical: Set[str] = field(default_factory=set)
    #: Every property the kernel may touch.
    seen: Set[str] = field(default_factory=set)

    @property
    def complete(self) -> bool:
        """Whether the static sets are sound on their own.  When False
        (a slot had no recoverable source, or a role escaped the
        analysis) the engine keeps the runtime sample tracer as the
        safety net for this kernel."""
        return self.access.complete

    def describe(self) -> dict:
        out = self.access.describe()
        out["critical"] = sorted(self.critical)
        out["seen"] = sorted(self.seen)
        return out


def classify_kernel(access: KernelAccess) -> StaticClassification:
    """Derive the critical-property set of one kernel from its access
    sets, per Table II."""
    if access.kind not in KERNEL_KINDS:
        raise ValueError(f"unknown kernel kind {access.kind!r}")
    critical: Set[str] = set()
    if access.kind == "edge_map_dense":
        critical |= {p for role, p in access.reads if role == "source"}
    elif access.kind == "edge_map_sparse":
        critical |= {p for role, p in access.reads | access.writes if role == "target"}
    # VERTEXMAP accesses are never critical by Table II; only get-view
    # reads (below) can make a vertex_map property critical.
    critical |= access.remote_reads
    return StaticClassification(
        kind=access.kind, access=access, critical=critical, seen=access.seen
    )


def analyze_kernel(
    kind: str,
    F=None,
    M=None,
    C=None,
    R=None,
) -> StaticClassification:
    """One-call entry point: analyze the kernel's user functions and
    classify the result (both layers memoize)."""
    from repro.analysis.staticpass.analyzer import kernel_access

    return classify_kernel(kernel_access(kind, F=F, M=M, C=C, R=R))


def cross_check(
    static: StaticClassification,
    traced_critical: Set[str],
    traced_seen: Set[str],
) -> Optional[str]:
    """Compare the static verdict against a runtime trace of the same
    kernel (the *oracle* role tracing keeps under ``analysis="check"``).

    A sound static pass must cover everything the trace observed; a
    single-path trace legitimately sees *less* (branches not taken on
    the sample edge), so only ``trace - static`` is a disagreement.
    Returns a human-readable description of the disagreement, or
    ``None`` when the static sets cover the trace.
    """
    missed_critical = traced_critical - static.critical
    missed_seen = traced_seen - static.seen
    if not missed_critical and not missed_seen:
        return None
    parts = []
    if missed_critical:
        parts.append(
            "trace-critical properties missed by the static pass: "
            + ", ".join(sorted(missed_critical))
        )
    if missed_seen:
        parts.append(
            "trace-seen properties missed by the static pass: "
            + ", ".join(sorted(missed_seen))
        )
    return f"{static.kind}: " + "; ".join(parts)
