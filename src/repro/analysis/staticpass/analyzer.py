"""AST / closure inspection of FLASH user functions.

This is the reproduction of the code generator's *static* analysis
(paper §IV-B): instead of observing a sample edge at runtime, the
analyzer recovers each user function's source (through ``bind`` wrappers
and closures), parses it, and collects every property access on every
control-flow path, attributed to the vertex role each parameter plays.

What the pass understands:

* attribute reads/writes on role-bound parameters (``d.dis = s.dis + 1``),
  including augmented assignment and aliasing (``x = d`` keeps the role);
* the :func:`~repro.algorithms.common.local_set` / ``local_list`` /
  ``local_dict`` copy-on-write helpers (a read *and* a write of the
  named property);
* literal ``getattr`` / ``setattr`` / ``hasattr``;
* reads through FLASHWARE's ``engine.get(...)`` views — arbitrary-vertex
  reads, critical in every kernel kind (the code generator reaches the
  same verdict from the ``get`` call site);
* calls to other statically resolvable Python functions (closure or
  module globals), analyzed interprocedurally with roles propagated
  through positional arguments (bounded depth, recursion-safe);
* mutation of captured globals (``nonlocal``/``global`` declarations,
  in-place mutator calls and subscript stores on free names) — feeding
  the :mod:`~repro.analysis.staticpass.lint` rules.

Anything it cannot resolve — a dynamic ``getattr`` name, a role
parameter escaping into an unresolvable callee, a function with no
recoverable source — degrades soundly: the affected role is flagged
*unknown* and the engine keeps the runtime sample tracer as the safety
net for that kernel.
"""

from __future__ import annotations

import ast
import builtins
import functools
import linecache
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.staticpass.ir import SLOTS, FunctionAccess, KernelAccess
from repro.core.vertex import RESERVED_ATTRIBUTES

#: Attribute names that are not vertex properties.
IGNORED_ATTRIBUTES = frozenset(RESERVED_ATTRIBUTES) | {"staged"}

#: In-place mutator method names on collections — calling one on a
#: captured name mutates shared state outside the BSP snapshot model.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})

#: Binary operators that are not commutative — a reduce writing the
#: target from one of these over both of its (same-role) parameters is
#: order-sensitive.
_NONCOMMUTATIVE_OPS = (
    ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow, ast.LShift,
    ast.RShift, ast.MatMult,
)

#: Role signature per kernel slot (engine argument order).
VERTEX_MAP_ROLES: Dict[str, Tuple[str, ...]] = {
    "F": ("self",),
    "M": ("self",),
}
EDGE_MAP_ROLES: Dict[str, Tuple[str, ...]] = {
    "C": ("target",),
    "F": ("source", "target"),
    "M": ("source", "target"),
    "R": ("target", "target"),
}

# ---------------------------------------------------------------------------
# Source recovery
# ---------------------------------------------------------------------------
_tree_cache: Dict[str, Optional[ast.Module]] = {}


def _module_tree(filename: str) -> Optional[ast.Module]:
    """Parse (and cache) the module that defines a function.  Uses
    ``linecache`` so sources registered by doctest/interactive frontends
    resolve too; returns ``None`` when no source exists (C functions,
    ``exec`` without a source hook)."""
    if filename not in _tree_cache:
        source = "".join(linecache.getlines(filename))
        try:
            _tree_cache[filename] = ast.parse(source) if source else None
        except SyntaxError:  # pragma: no cover - partial/invalid cache entry
            _tree_cache[filename] = None
    return _tree_cache[filename]


def clear_caches() -> None:
    """Drop all memoized parses and analyses (tests re-defining
    same-named functions via exec hooks may want a clean slate)."""
    _tree_cache.clear()
    _function_cache.clear()
    _kernel_cache.clear()


def _unwrap(fn: Callable) -> Tuple[Callable, int, Tuple[Any, ...]]:
    """Peel ``bind``/``functools.wraps`` wrappers and ``partial``s.
    Returns the innermost function, the number of *leading* positional
    parameters pre-applied (``partial`` prepends), and the *trailing*
    bound values (``bind`` appends, leaving the leading role parameters
    untouched; nested binds append outermost-first, matching the call
    order ``outer(*args) -> inner(*args, *outer_bound, *inner_bound)``)."""
    leading = 0
    trailing: Tuple[Any, ...] = ()
    for _ in range(16):
        if isinstance(fn, functools.partial):
            leading += len(fn.args)
            fn = fn.func
        elif hasattr(fn, "__wrapped__"):
            trailing = trailing + tuple(getattr(fn, "__flash_bound__", ()))
            fn = fn.__wrapped__
        else:
            break
    return fn, leading, trailing


def _find_def(tree: ast.Module, code) -> Optional[ast.AST]:
    """Locate the AST node compiled into ``code``: a named def by name +
    nearest line, a lambda by line + arity (ambiguous matches — two
    same-arity lambdas on one line — resolve to ``None``, soundly)."""
    if code.co_name != "<lambda>":
        candidates = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == code.co_name
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: abs(n.lineno - code.co_firstlineno))
    argcount = code.co_argcount
    candidates = [
        node for node in ast.walk(tree)
        if isinstance(node, ast.Lambda)
        and node.lineno == code.co_firstlineno
        and len(node.args.args) == argcount
    ]
    if len(candidates) != 1:
        return None
    return candidates[0]


def _resolve_name(fn: Callable, name: str) -> Tuple[bool, Any]:
    """Resolve a free/global name in ``fn``'s environment.  Returns
    ``(found, value)``."""
    code = fn.__code__
    if fn.__closure__ and name in code.co_freevars:
        cell = fn.__closure__[code.co_freevars.index(name)]
        try:
            return True, cell.cell_contents
        except ValueError:  # empty cell (still being defined)
            return False, None
    if name in getattr(fn, "__globals__", {}):
        return True, fn.__globals__[name]
    if hasattr(builtins, name):
        return True, getattr(builtins, name)
    return False, None


def _is_engine(obj: Any) -> bool:
    from repro.core.engine import FlashEngine  # local: avoids import cycle

    return isinstance(obj, FlashEngine)


def _bound_sig(value: Any) -> Any:
    """What the analysis consults a bound value for: engine-ness and
    callee identity.  Two binds agreeing on these produce identical
    access sets, so they may share a memoization entry."""
    if _is_engine(value):
        return "engine"
    code = getattr(value, "__code__", None)
    if code is not None:
        return code
    return None


def _is_local_helper(obj: Any, name: str) -> bool:
    """Whether a callee is one of the ``local_set``/``local_list``/
    ``local_dict`` copy-on-write helpers."""
    if name not in ("local_set", "local_list", "local_dict"):
        return False
    module = getattr(obj, "__module__", "")
    return obj is None or module.startswith("repro.")


# ---------------------------------------------------------------------------
# The AST visitor
# ---------------------------------------------------------------------------
class _FunctionVisitor(ast.NodeVisitor):
    def __init__(
        self,
        fn: Callable,
        acc: FunctionAccess,
        env: Dict[str, str],
        stack: Set[Any],
        depth: int,
        bound: Optional[Dict[str, Any]] = None,
    ):
        self.fn = fn
        self.acc = acc
        self.env = dict(env)  # name -> role
        self.bound = dict(bound or {})  # param name -> bind()-supplied value
        self.remote: Set[str] = set()  # names holding engine.get views
        self.stack = stack
        self.depth = depth
        code = fn.__code__
        self.local_names = set(code.co_varnames) | set(code.co_cellvars)
        self.param_index = {name: i for i, name in enumerate(acc.param_names)}

    # -- helpers -------------------------------------------------------
    def _role_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        return None

    def _record_read(self, role: str, prop: str) -> None:
        if prop not in IGNORED_ATTRIBUTES and not prop.startswith("_"):
            self.acc.reads.add((role, prop))

    def _record_write(self, role: str, prop: str) -> None:
        if prop not in IGNORED_ATTRIBUTES and not prop.startswith("_"):
            self.acc.writes.add((role, prop))

    def _resolve(self, name: str) -> Tuple[bool, Any]:
        """Resolve a non-role name: ``bind``-supplied parameter values
        first, then the closure/global/builtin chain."""
        if name in self.bound:
            return True, self.bound[name]
        return _resolve_name(self.fn, name)

    def _is_engine_get_call(self, node: ast.AST) -> bool:
        """``<engine>.get(x)`` — the FLASHWARE arbitrary-vertex read."""
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return False
        if node.func.attr != "get":
            return False
        base = node.func.value
        if not isinstance(base, ast.Name) or base.id in self.env:
            return False
        found, obj = self._resolve(base.id)
        if found:
            return _is_engine(obj)
        # Unresolvable receiver: fall back to the conventional names.
        return base.id in ("eng", "engine")

    def _captured(self, name: str) -> bool:
        """A name referencing enclosing-scope or module state."""
        return name not in self.local_names and name not in self.env

    # -- statements ----------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.acc.mutated_globals.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.acc.mutated_globals.update(node.names)

    def _handle_store(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Attribute):
            role = self._role_of(target.value)
            if role is not None:
                self._record_write(role, target.attr)
                if value is not None:
                    self._check_noncommutative(role, target.attr, value)
                return
            if isinstance(target.value, ast.Name) and target.value.id in self.remote:
                self.acc.remote_writes.add(target.attr)
                return
            if self._is_engine_get_call(target.value):
                self.acc.remote_writes.add(target.attr)
                for arg in target.value.args:
                    self.visit(arg)
                return
            self.visit(target.value)
        elif isinstance(target, ast.Name):
            name = target.id
            if value is not None and isinstance(value, ast.Name) and value.id in self.env:
                self.env[name] = self.env[value.id]
                return
            if value is not None and self._is_engine_get_call(value):
                self.remote.add(name)
                for arg in value.args:
                    self.visit(arg)
                return
            # Rebinding away from a role/remote view.
            self.env.pop(name, None)
            self.remote.discard(name)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts_value = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                else [None] * len(target.elts)
            )
            for t, v in zip(target.elts, elts_value):
                self._handle_store(t, v)
        elif isinstance(target, ast.Subscript):
            if (
                isinstance(target.value, ast.Name)
                and self._captured(target.value.id)
                and not target.value.id.startswith("__")
            ):
                found, obj = self._resolve(target.value.id)
                if not found or not callable(obj):
                    self.acc.mutated_globals.add(target.value.id)
            self.visit(target.value)
            self.visit(target.slice)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._handle_store(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._handle_store(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Attribute):
            role = self._role_of(target.value)
            if role is not None:
                self._record_read(role, target.attr)
                self._record_write(role, target.attr)
                return
        self._handle_store(target, None)

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Name):
            name = node.value.id
            if name in self.env and name in self.param_index:
                self.acc.returns_param = self.param_index[name]
        if node.value is not None:
            self.visit(node.value)

    # -- expressions ---------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            role = self._role_of(node.value)
            if role is not None:
                self._record_read(role, node.attr)
                return
            if isinstance(node.value, ast.Name) and node.value.id in self.remote:
                if node.attr not in IGNORED_ATTRIBUTES:
                    self.acc.remote_reads.add(node.attr)
                return
            if self._is_engine_get_call(node.value):
                if node.attr not in IGNORED_ATTRIBUTES:
                    self.acc.remote_reads.add(node.attr)
                for arg in node.value.args:
                    self.visit(arg)
                return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        handled_args = False
        if isinstance(func, ast.Name):
            handled_args = self._call_by_name(node, func.id)
        elif isinstance(func, ast.Attribute):
            handled_args = self._call_on_attribute(node, func)
        if not handled_args:
            for arg in node.args:
                self._visit_call_arg(arg, resolved_opaque=False)
            for kw in node.keywords:
                self.visit(kw.value)

    def _visit_call_arg(self, arg: ast.AST, resolved_opaque: bool) -> None:
        """Visit one call argument; a bare role parameter escaping into
        an unresolvable callee makes that role unknown (sound: the callee
        could touch any property)."""
        if isinstance(arg, ast.Name) and arg.id in self.env and not resolved_opaque:
            self.acc.unknown_roles.add(self.env[arg.id])
            return
        self.visit(arg)

    def _call_by_name(self, node: ast.Call, name: str) -> bool:
        """Handle ``name(...)``.  Returns True when arguments were fully
        handled here."""
        found, obj = self._resolve(name)

        # local_set(d, "prop") and friends: read + write of the property.
        if _is_local_helper(obj if found else None, name):
            if (
                len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in self.env
            ):
                role = self.env[node.args[0].id]
                prop = node.args[1]
                if isinstance(prop, ast.Constant) and isinstance(prop.value, str):
                    self._record_read(role, prop.value)
                    self._record_write(role, prop.value)
                else:
                    self.acc.unknown_roles.add(role)
                return True
            for arg in node.args:
                self.visit(arg)
            return True

        # Literal getattr / setattr / hasattr on a role parameter.
        if name in ("getattr", "hasattr", "setattr") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name) and first.id in self.env:
                role = self.env[first.id]
                prop = node.args[1] if len(node.args) > 1 else None
                if isinstance(prop, ast.Constant) and isinstance(prop.value, str):
                    if name == "setattr":
                        self._record_write(role, prop.value)
                    else:
                        self._record_read(role, prop.value)
                else:
                    self.acc.unknown_roles.add(role)
                for extra in node.args[2:]:
                    self.visit(extra)
                return True

        if found and callable(obj):
            if (
                getattr(obj, "__module__", "") == "builtins"
                or obj is getattr(builtins, name, None)
            ):
                # Builtins never read vertex properties.
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return True
            if (
                hasattr(obj, "__code__")
                or hasattr(obj, "__wrapped__")
                or isinstance(obj, functools.partial)
            ):
                self._recurse_into(obj, node)
                return True
        return False

    def _call_on_attribute(self, node: ast.Call, func: ast.Attribute) -> bool:
        base = func.value
        # Method call on a role parameter: runtime resolves the name as a
        # property read, then calls the value.
        if isinstance(base, ast.Name) and base.id in self.env:
            role = self.env[base.id]
            self._record_read(role, func.attr)
            for arg in node.args:
                self.visit(arg)
            return True
        if isinstance(base, ast.Name):
            name = base.id
            found, obj = self._resolve(name)
            if found and _is_engine(obj):
                # engine.get handled by the Attribute/Assign visitors; a
                # bare call (or charge/subset/...) just evaluates args.
                for arg in node.args:
                    self.visit(arg)
                return True
            # In-place mutation of a captured collection.
            if (
                self._captured(name)
                and func.attr in MUTATOR_METHODS
                and not (found and callable(obj))
            ):
                self.acc.mutated_globals.add(name)
        self.visit(base)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        return True

    def _recurse_into(self, callee: Callable, node: ast.Call) -> None:
        """Interprocedural step: analyze a resolvable callee with roles
        propagated through positional arguments."""
        if self.depth >= 8:
            for arg in node.args:
                self._visit_call_arg(arg, resolved_opaque=False)
            return
        inner, _leading, _trailing = _unwrap(callee)
        code = getattr(inner, "__code__", None)
        if code is None:
            for arg in node.args:
                self._visit_call_arg(arg, resolved_opaque=False)
            return
        callee_roles: List[Optional[str]] = [self._role_of(arg) for arg in node.args]
        if code in self.stack:
            # Recursive call: the body is already being accounted once.
            for arg in node.args:
                if not (isinstance(arg, ast.Name) and arg.id in self.env):
                    self.visit(arg)
            return
        sub = function_access(
            callee, tuple(callee_roles), _stack=self.stack, _depth=self.depth + 1
        )
        self.acc.reads |= sub.reads
        self.acc.writes |= sub.writes
        self.acc.remote_reads |= sub.remote_reads
        self.acc.remote_writes |= sub.remote_writes
        self.acc.unknown_roles |= sub.unknown_roles
        self.acc.mutated_globals |= sub.mutated_globals
        if sub.unanalyzable:
            for role in callee_roles:
                if role is not None:
                    self.acc.unknown_roles.add(role)
        # Argument *expressions* still evaluate at the call site.
        for arg in node.args:
            if not (isinstance(arg, ast.Name) and arg.id in self.env):
                self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    # -- nested scopes -------------------------------------------------
    def _visit_nested(self, node, params: Sequence[ast.arg]) -> None:
        shadowed = {a.arg for a in params}
        saved = self.env
        self.env = {k: v for k, v in saved.items() if k not in shadowed}
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        self.env = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node, node.args.args)

    def visit_AsyncFunctionDef(self, node) -> None:  # pragma: no cover
        self._visit_nested(node, node.args.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node, node.args.args)

    # -- reduce-order sensitivity --------------------------------------
    def _check_noncommutative(self, role: str, prop: str, value: ast.AST) -> None:
        """Flag ``<param_a>.prop <noncomm-op> <param_b>.prop`` writes
        where both parameters share the written role (R's two parameters
        are both the target: order of arrival changes the result)."""
        has_op = any(
            isinstance(sub, ast.BinOp) and isinstance(sub.op, _NONCOMMUTATIVE_OPS)
            for sub in ast.walk(value)
        )
        if not has_op:
            return
        involved = {
            sub.value.id
            for sub in ast.walk(value)
            if isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and self.env.get(sub.value.id) == role
        }
        if len(involved) >= 2:
            self.acc.noncomm_writes.add(prop)


# ---------------------------------------------------------------------------
# Entry points (memoized)
# ---------------------------------------------------------------------------
_function_cache: Dict[Tuple, FunctionAccess] = {}
_kernel_cache: Dict[Tuple, KernelAccess] = {}


def _cache_key(fn: Callable) -> Any:
    inner, leading, trailing = _unwrap(fn)
    code = getattr(inner, "__code__", None)
    if code is None:
        return inner
    return (code, leading, tuple(_bound_sig(v) for v in trailing))


def function_access(
    fn: Callable,
    roles: Tuple[Optional[str], ...],
    _stack: Optional[Set[Any]] = None,
    _depth: int = 0,
) -> FunctionAccess:
    """Compute (and memoize) the :class:`FunctionAccess` of ``fn`` with
    its leading positional parameters bound to ``roles``.  ``None``
    entries are non-vertex parameters (``bind``-supplied globals,
    prepended ``partial`` arguments)."""
    key = (_cache_key(fn), tuple(roles))
    cached = _function_cache.get(key)
    if cached is not None:
        return cached

    inner, leading, trailing = _unwrap(fn)
    code = getattr(inner, "__code__", None)
    acc = FunctionAccess(name=getattr(inner, "__name__", type(inner).__name__))
    if code is None:
        acc.unanalyzable = True
        acc.unknown_roles |= {r for r in roles if r is not None}
        _function_cache[key] = acc
        return acc

    acc.filename = code.co_filename
    acc.lineno = code.co_firstlineno
    tree = _module_tree(code.co_filename)
    node = _find_def(tree, code) if tree is not None else None
    if node is None:
        acc.unanalyzable = True
        acc.unknown_roles |= {r for r in roles if r is not None}
        _function_cache[key] = acc
        return acc

    params = [a.arg for a in node.args.args]
    # ``partial`` pre-applies leading parameters (role-less), ``bind``
    # appends trailing ones — the caller's roles describe the wrapper's
    # own positional parameters, which start after the pre-applied ones.
    full_roles: List[Optional[str]] = [None] * leading + list(roles)
    env: Dict[str, str] = {}
    param_names: List[str] = []
    for i, name in enumerate(params):
        role = full_roles[i] if i < len(full_roles) else None
        if role is not None:
            env[name] = role
            param_names.append(name)
    acc.param_names = tuple(param_names)
    # bind()-supplied values fill the last parameters; resolving them to
    # their concrete objects lets the pass recognize e.g. a bound engine.
    bound_env: Dict[str, Any] = {}
    if trailing:
        tail = params[max(len(params) - len(trailing), 0):]
        bound_env = dict(zip(tail, trailing[-len(tail):] if tail else ()))

    stack = _stack if _stack is not None else set()
    stack.add(code)
    try:
        visitor = _FunctionVisitor(inner, acc, env, stack, _depth, bound=bound_env)
        if isinstance(node, ast.Lambda):
            # A lambda's body is its return expression.
            visitor.visit_Return(ast.Return(value=node.body))
        else:
            for stmt in node.body:
                visitor.visit(stmt)
    finally:
        stack.discard(code)
    _function_cache[key] = acc
    return acc


def kernel_access(
    kind: str,
    F: Optional[Callable] = None,
    M: Optional[Callable] = None,
    C: Optional[Callable] = None,
    R: Optional[Callable] = None,
) -> KernelAccess:
    """Analyze one kernel's user-function slots into a
    :class:`KernelAccess` (memoized per code objects + kind)."""
    fns = {"F": F, "M": M, "C": C, "R": R}
    key = (kind,) + tuple(
        _cache_key(fn) if fn is not None else None for fn in fns.values()
    )
    cached = _kernel_cache.get(key)
    if cached is not None:
        return cached

    role_map = VERTEX_MAP_ROLES if kind == "vertex_map" else EDGE_MAP_ROLES
    slots: Dict[str, Optional[FunctionAccess]] = {}
    for slot in SLOTS:
        fn = fns.get(slot)
        if fn is None or slot not in role_map:
            slots[slot] = None
            continue
        slots[slot] = function_access(fn, role_map[slot])
    ka = KernelAccess(kind=kind, slots=slots)
    _kernel_cache[key] = ka
    return ka
