"""Validate declared spec access sets against the static analyzer.

Vectorized kernel specs (:mod:`repro.runtime.vectorized.specs`) are
optimization *hints*: the interpreted F/M/C/R callables stay the source
of truth.  That makes a divergent spec a silent performance-or-semantics
hazard — the spec path would compute something the callables don't.
With the static analyzer in place the engine can cross-check the two:
every property the callables may write or read must be covered by the
spec's declared access sets.  Mismatches don't change execution (the
hint is still applied exactly as before); they surface as engine
diagnostics, the same channel static-fallback and trace-disagreement
notes use.

Only *under*-declaration is reported.  A spec declaring more than the
analyzer found is harmless — declared sets are upper bounds the
dispatcher uses for column checks.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.staticpass.tableii import StaticClassification


def _blame(access, prop: str, attr: str) -> Optional[str]:
    """The slot + ``file:line`` performing the offending access — the
    first slot (in C/F/M/R order) whose ``attr`` set touches ``prop``."""
    for slot in ("C", "F", "M", "R"):
        fa = access.slots.get(slot)
        if fa is None:
            continue
        props = getattr(fa, attr)
        touched = {p for _, p in props} if props and isinstance(
            next(iter(props)), tuple
        ) else set(props)
        if prop in touched:
            if fa.filename:
                return f"{slot} at {fa.filename}:{fa.lineno}"
            return f"{slot} in {fa.name}"
    return None


def check_spec(kind: str, spec, classification: StaticClassification) -> List[str]:
    """Compare one kernel's static access sets against the spec passed
    alongside it.  Returns diagnostic strings (empty = consistent), each
    naming the kernel kind and the offending slot's ``file:line``;
    incomplete classifications are skipped (nothing sound to compare)."""
    if not classification.complete:
        return []
    access = classification.access
    static_reads = {p for _, p in access.reads} | access.remote_reads
    static_writes = {p for _, p in access.writes}
    diagnostics: List[str] = []

    declared = spec.declared_access()
    declared_reads: Set[str] = set(declared["reads"])
    declared_writes: Set[str] = set(declared["writes"])
    if kind == "vertex_map" and not declared_writes:
        # Legacy spec without declared writes: nothing to check against
        # (reads alone are dispatch requirements, not a complete access
        # declaration).
        return []

    for prop in sorted(static_writes - declared_writes):
        blame = _blame(access, prop, "writes")
        where = f" (written by {blame})" if blame else ""
        diagnostics.append(
            f"{kind}: user functions write {prop!r}{where} but the spec "
            f"declares writes={sorted(declared_writes)!r}"
        )
    for prop in sorted(static_reads - declared_reads - declared_writes):
        blame = _blame(access, prop, "reads") or _blame(
            access, prop, "remote_reads"
        )
        where = f" (read by {blame})" if blame else ""
        diagnostics.append(
            f"{kind}: user functions read {prop!r}{where} but the spec "
            f"declares reads={sorted(declared_reads)!r}"
        )
    return diagnostics
