"""Validate declared spec access sets against the static analyzer.

Vectorized kernel specs (:mod:`repro.runtime.vectorized.specs`) are
optimization *hints*: the interpreted F/M/C/R callables stay the source
of truth.  That makes a divergent spec a silent performance-or-semantics
hazard — the spec path would compute something the callables don't.
With the static analyzer in place the engine can cross-check the two:
every property the callables may write or read must be covered by the
spec's declared access sets.  Mismatches don't change execution (the
hint is still applied exactly as before); they surface as engine
diagnostics, the same channel static-fallback and trace-disagreement
notes use.

Only *under*-declaration is reported.  A spec declaring more than the
analyzer found is harmless — declared sets are upper bounds the
dispatcher uses for column checks.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.staticpass.tableii import StaticClassification


def check_spec(kind: str, spec, classification: StaticClassification) -> List[str]:
    """Compare one kernel's static access sets against the spec passed
    alongside it.  Returns diagnostic strings (empty = consistent);
    incomplete classifications are skipped (nothing sound to compare)."""
    if not classification.complete:
        return []
    access = classification.access
    static_reads = {p for _, p in access.reads} | access.remote_reads
    static_writes = {p for _, p in access.writes}
    diagnostics: List[str] = []

    declared = spec.declared_access()
    declared_reads: Set[str] = set(declared["reads"])
    declared_writes: Set[str] = set(declared["writes"])
    if kind == "vertex_map" and not declared_writes:
        # Legacy spec without declared writes: nothing to check against
        # (reads alone are dispatch requirements, not a complete access
        # declaration).
        return []

    missing_writes = static_writes - declared_writes
    if missing_writes:
        diagnostics.append(
            f"{kind}: user functions write "
            + ", ".join(sorted(missing_writes))
            + " but the spec declares writes=" + repr(sorted(declared_writes))
        )
    missing_reads = static_reads - declared_reads - declared_writes
    if missing_reads:
        diagnostics.append(
            f"{kind}: user functions read "
            + ", ".join(sorted(missing_reads))
            + " but the spec declares reads=" + repr(sorted(declared_reads))
        )
    return diagnostics
