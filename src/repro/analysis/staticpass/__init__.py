"""Ahead-of-time static analysis of FLASH programs (paper §IV-B/§IV-C).

The package reproduces what the paper's code generator does at compile
time: derive each kernel's complete critical-property set from the
program text instead of observing a sample edge at runtime, and lint the
program for FLASH-model misuse before a single superstep runs.

Layers
------
:mod:`~repro.analysis.staticpass.ir`
    The access-set IR (``FunctionAccess`` / ``KernelAccess``).
:mod:`~repro.analysis.staticpass.analyzer`
    AST/closure inspection turning user functions into the IR.
:mod:`~repro.analysis.staticpass.tableii`
    Table II over the IR: the critical-property classification, plus the
    cross-check against the runtime trace oracle.
:mod:`~repro.analysis.staticpass.program`
    Ambient whole-program capture (nested engines included).
:mod:`~repro.analysis.staticpass.lint`
    flashlint — the rule catalog behind ``repro lint``.
:mod:`~repro.analysis.staticpass.speccheck`
    Declared vectorized-spec access sets validated against the IR.

See ``docs/static_analysis.md`` for the full walkthrough.
"""

from repro.analysis.staticpass.analyzer import (
    clear_caches,
    function_access,
    kernel_access,
)
from repro.analysis.staticpass.ir import Access, FunctionAccess, KernelAccess
from repro.analysis.staticpass.lint import (
    RULES,
    Finding,
    lint_app,
    lint_apps,
    lint_capture,
    summarize,
)
from repro.analysis.staticpass.program import (
    KernelReport,
    ProgramCapture,
    capture_program,
)
from repro.analysis.staticpass.speccheck import check_spec
from repro.analysis.staticpass.tableii import (
    StaticClassification,
    analyze_kernel,
    classify_kernel,
    cross_check,
)

__all__ = [
    "Access",
    "Finding",
    "FunctionAccess",
    "KernelAccess",
    "KernelReport",
    "ProgramCapture",
    "RULES",
    "StaticClassification",
    "analyze_kernel",
    "capture_program",
    "check_spec",
    "classify_kernel",
    "clear_caches",
    "cross_check",
    "function_access",
    "kernel_access",
    "lint_app",
    "lint_apps",
    "lint_capture",
    "summarize",
]
