"""A PowerGraph-style Gather-Apply-Scatter framework (Gonzalez et al. [9]).

The GAS model factors a vertex program into three phases executed for
every active vertex each iteration:

* **gather** — combine data over the vertex's (in-)edges with a
  commutative/associative ``accum``;
* **apply** — update the vertex value from the gathered accumulator;
* **scatter** — run over (out-)edges and decide which neighbors to
  activate for the next iteration.

The control flow is *fixed* (one loop to quiescence) and communication
is strictly neighborhood-only — the two restrictions the paper blames
for GAS's limited expressiveness (§II).  Multi-phase algorithms must be
emulated by chaining runs driver-side (values can be threaded through
``initial_values``), paying a data-sharing superstep each time.

Accounting per iteration mirrors PowerGraph's master/mirror protocol:
mirrors send partial gather sums to the master (one reduce message per
remote partition holding neighbors), and the applied value is synced
back to those mirrors.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set

from repro.baselines.base import BaselineFramework
from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.runtime.flashware import values_equal


class GASContext:
    """Read-only execution context passed to the phase functions."""

    def __init__(self, framework: "GASFramework"):
        self.framework = framework
        self.iteration = 0

    @property
    def graph(self) -> Graph:
        return self.framework.graph


class GASProgram:
    """Base class for GAS programs.

    Subclasses override the three phases; ``gather_edges`` /
    ``scatter_edges`` select the edge direction (``"in"``, ``"out"`` or
    ``"both"``, as in PowerGraph).
    """

    gather_edges: str = "in"
    scatter_edges: str = "out"

    def initial_value(self, vid: int, graph: Graph) -> Any:
        raise NotImplementedError

    def initial_active(self, vid: int, graph: Graph) -> bool:
        return True

    def gather(self, ctx: GASContext, vid: int, value: Any, nbr: int, nbr_value: Any) -> Any:
        """Contribution of one neighbor; return ``None`` to contribute
        nothing."""
        return None

    def accum(self, a: Any, b: Any) -> Any:
        """Commutative/associative combination of two gather results."""
        raise NotImplementedError

    def apply(self, ctx: GASContext, vid: int, value: Any, acc: Any) -> Any:
        """New vertex value from the gathered accumulator (``acc`` is
        ``None`` when nothing was gathered)."""
        return value

    def scatter(
        self, ctx: GASContext, vid: int, value: Any, changed: bool, nbr: int, nbr_value: Any
    ) -> bool:
        """Whether to activate ``nbr`` for the next iteration."""
        return False

    def keep_active(self, ctx: GASContext, vid: int, value: Any) -> bool:
        """Whether this vertex re-signals itself (PowerGraph's
        ``signal(self)``) for the next iteration."""
        return False


class GASFramework(BaselineFramework):
    """Synchronous GAS engine with PowerGraph-style accounting."""

    framework_name = "gas"

    def _edges(self, vid: int, direction: str) -> Iterable[int]:
        if direction == "in":
            return self.graph.in_neighbors(vid)
        if direction == "out":
            return self.graph.out_neighbors(vid)
        if direction == "both":
            seen = set(int(u) for u in self.graph.in_neighbors(vid))
            seen.update(int(u) for u in self.graph.out_neighbors(vid))
            return sorted(seen)
        raise ValueError(f"unknown edge direction {direction!r}")

    def run(
        self,
        program: GASProgram,
        max_iterations: int = 100_000,
        initial_values: Optional[List[Any]] = None,
        initial_active: Optional[Iterable[int]] = None,
        label: str = "",
    ) -> List[Any]:
        """Run ``program`` to quiescence (or ``max_iterations``) and
        return the vertex values.  ``initial_values`` / ``initial_active``
        let a driver chain phases."""
        graph = self.graph
        n = graph.num_vertices
        label = label or type(program).__name__
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [program.initial_value(v, graph) for v in range(n)]
        if initial_active is not None:
            active: Set[int] = {int(v) for v in initial_active}
        else:
            active = {v for v in range(n) if program.initial_active(v, graph)}

        ctx = GASContext(self)
        iteration = 0
        while active:
            if iteration >= max_iterations:
                break
            rec = self.metrics.new_record("gas", label)
            rec.frontier_in = len(active)
            ctx.iteration = iteration
            next_active: Set[int] = set()
            new_values = dict(enumerate(values))

            for vid in sorted(active):
                worker = self.owner(vid)
                # Gather at mirrors, reduce to the master.
                acc: Any = None
                gathered = False
                for nbr in self._edges(vid, program.gather_edges):
                    nbr = int(nbr)
                    rec.worker_ops[worker] += 1
                    contribution = program.gather(ctx, vid, values[vid], nbr, values[nbr])
                    if contribution is None:
                        continue
                    acc = contribution if not gathered else program.accum(acc, contribution)
                    gathered = True
                remote = self.partition.neighbor_mirrors(vid)
                if remote and gathered:
                    rec.reduce_messages += len(remote)
                    rec.reduce_values += len(remote)

                # Apply at the master; sync the new value to mirrors.
                rec.worker_ops[worker] += 1
                new_value = program.apply(ctx, vid, values[vid], acc)
                changed = not values_equal(new_value, values[vid])
                new_values[vid] = new_value
                if changed and remote:
                    rec.sync_messages += len(remote)
                    rec.sync_values += len(remote)

                # Scatter along out-edges, activating neighbors.
                for nbr in self._edges(vid, program.scatter_edges):
                    nbr = int(nbr)
                    rec.worker_ops[worker] += 1
                    if program.scatter(ctx, vid, new_value, changed, nbr, values[nbr]):
                        next_active.add(nbr)
                if program.keep_active(ctx, vid, new_value):
                    next_active.add(vid)

            values = [new_values[v] for v in range(n)]
            active = next_active
            rec.frontier_out = len(active)
            iteration += 1
        return values

    def run_async(
        self,
        program: GASProgram,
        max_updates: int = 10_000_000,
        initial_values: Optional[List[Any]] = None,
        initial_active: Optional[Iterable[int]] = None,
        label: str = "",
    ) -> List[Any]:
        """Asynchronous execution: a vertex's update is visible to its
        neighbors *immediately*, and activated vertices join a work queue
        rather than waiting for a barrier (PowerGraph's async engine —
        the paper credits it for GC converging "much faster than a
        BSP-based algorithm", §V-B / App. B-E).

        Deterministic here: the queue is processed in sorted order per
        sweep.  Accounting rolls the whole run into sweeps of one metrics
        record each; messages are charged per remote gather/sync like the
        synchronous engine, but with no barrier rounds.
        """
        graph = self.graph
        n = graph.num_vertices
        label = label or f"async:{type(program).__name__}"
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [program.initial_value(v, graph) for v in range(n)]
        if initial_active is not None:
            queue = {int(v) for v in initial_active}
        else:
            queue = {v for v in range(n) if program.initial_active(v, graph)}

        ctx = GASContext(self)
        updates = 0
        while queue:
            rec = self.metrics.new_record("gas_async", label)
            rec.frontier_in = len(queue)
            ctx.iteration += 1
            batch = sorted(queue)
            queue = set()
            for vid in batch:
                updates += 1
                if updates > max_updates:
                    raise ReproError(f"async program {label} exceeded the update budget")
                worker = self.owner(vid)
                acc: Any = None
                gathered = False
                for nbr in self._edges(vid, program.gather_edges):
                    nbr = int(nbr)
                    rec.worker_ops[worker] += 1
                    contribution = program.gather(ctx, vid, values[vid], nbr, values[nbr])
                    if contribution is None:
                        continue
                    acc = contribution if not gathered else program.accum(acc, contribution)
                    gathered = True
                remote = self.partition.neighbor_mirrors(vid)
                if remote and gathered:
                    rec.reduce_messages += len(remote)
                    rec.reduce_values += len(remote)
                rec.worker_ops[worker] += 1
                new_value = program.apply(ctx, vid, values[vid], acc)
                changed = not values_equal(new_value, values[vid])
                values[vid] = new_value  # visible immediately
                if changed and remote:
                    rec.sync_messages += len(remote)
                    rec.sync_values += len(remote)
                for nbr in self._edges(vid, program.scatter_edges):
                    nbr = int(nbr)
                    rec.worker_ops[worker] += 1
                    if program.scatter(ctx, vid, new_value, changed, nbr, values[nbr]):
                        queue.add(nbr)
                if program.keep_active(ctx, vid, new_value):
                    queue.add(vid)
            rec.frontier_out = len(queue)
        return values

    def chain_cost(self, label: str = "chain") -> None:
        """Data-sharing cost between chained GAS phases."""
        rec = self.metrics.new_record("gas_chain", label)
        n = self.graph.num_vertices
        per_worker = n // max(self.num_workers, 1) + 1
        for w in range(self.num_workers):
            rec.worker_ops[w] = per_worker
        rec.sync_messages += self.num_workers
        rec.sync_values += n
