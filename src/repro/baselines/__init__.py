"""From-scratch implementations of the four baseline frameworks the
paper compares against (§V-A):

* :mod:`repro.baselines.pregel` — Pregel+ style vertex-centric message
  passing (compute/combine, vote-to-halt, aggregators);
* :mod:`repro.baselines.gas` — PowerGraph's Gather-Apply-Scatter;
* :mod:`repro.baselines.gemini` — Gemini's signal/slot push-pull model
  with fixed-width numeric vertex state;
* :mod:`repro.baselines.ligra` — Ligra's shared-memory vertexSubset
  model (single node, no network).

Every framework runs on the same metrics/cost-model substrate as FLASH,
and every framework *enforces its published restrictions* — algorithms a
model cannot express raise
:class:`~repro.errors.InexpressibleError`, which is how Table I's empty
circles are reproduced structurally rather than by fiat.
"""

from repro.baselines.base import BaselineResult
from repro.baselines.gas import GASFramework, GASProgram
from repro.baselines.gemini import GeminiFramework
from repro.baselines.ligra import LigraEngine
from repro.baselines.pregel import PregelFramework, PregelProgram

__all__ = [
    "BaselineResult",
    "GASFramework",
    "GASProgram",
    "GeminiFramework",
    "LigraEngine",
    "PregelFramework",
    "PregelProgram",
]
