"""Registry mapping (framework, application) → runner.

This is what the Table V / Table VI / Fig. 1 benchmarks iterate over.
Entries that a framework cannot express are present but raise
:class:`~repro.errors.InexpressibleError` when called — the benchmark
renders them as the paper's "—".
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import gas_apps, gemini_apps, ligra_apps, pregel_apps
from repro.baselines.base import BaselineResult
from repro.errors import InexpressibleError
from repro.graph.graph import Graph

Runner = Callable[..., BaselineResult]

PREGEL_SUITE: Dict[str, Runner] = {
    "cc": pregel_apps.pregel_cc,
    "bfs": pregel_apps.pregel_bfs,
    "bc": pregel_apps.pregel_bc,
    "mis": pregel_apps.pregel_mis,
    "mm": pregel_apps.pregel_mm,
    "kc": pregel_apps.pregel_kc,
    "tc": pregel_apps.pregel_tc,
    "gc": pregel_apps.pregel_gc,
    "scc": pregel_apps.pregel_scc,
    "bcc": pregel_apps.pregel_bcc,
    "lpa": pregel_apps.pregel_lpa,
    "msf": pregel_apps.pregel_msf,
    "rc": pregel_apps.pregel_rc,
    "cl": pregel_apps.pregel_cl,
}

GAS_SUITE: Dict[str, Runner] = {
    "cc": gas_apps.gas_cc,
    "bfs": gas_apps.gas_bfs,
    "bc": gas_apps.gas_bc,
    "mis": gas_apps.gas_mis,
    "mm": gas_apps.gas_mm,
    "kc": gas_apps.gas_kc,
    "tc": gas_apps.gas_tc,
    "gc": gas_apps.gas_gc,
    "scc": gas_apps.gas_scc,
    "bcc": gas_apps.gas_bcc,
    "lpa": gas_apps.gas_lpa,
    "msf": gas_apps.gas_msf,
    "rc": gas_apps.gas_rc,
    "cl": gas_apps.gas_cl,
}

GEMINI_SUITE: Dict[str, Runner] = {
    "cc": gemini_apps.gemini_cc,
    "bfs": gemini_apps.gemini_bfs,
    "bc": gemini_apps.gemini_bc,
    "mis": gemini_apps.gemini_mis,
    "mm": gemini_apps.gemini_mm,
    "kc": gemini_apps.gemini_kc,
    "tc": gemini_apps.gemini_tc,
    "gc": gemini_apps.gemini_gc,
    "scc": gemini_apps.gemini_scc,
    "bcc": gemini_apps.gemini_bcc,
    "lpa": gemini_apps.gemini_lpa,
    "msf": gemini_apps.gemini_msf,
    "rc": gemini_apps.gemini_rc,
    "cl": gemini_apps.gemini_cl,
}

LIGRA_SUITE: Dict[str, Runner] = {
    "cc": ligra_apps.ligra_cc,
    "bfs": ligra_apps.ligra_bfs,
    "bc": ligra_apps.ligra_bc,
    "mis": ligra_apps.ligra_mis,
    "mm": ligra_apps.ligra_mm,
    "kc": ligra_apps.ligra_kc,
    "tc": ligra_apps.ligra_tc,
    "gc": ligra_apps.ligra_gc,
    "scc": ligra_apps.ligra_scc,
    "bcc": ligra_apps.ligra_bcc,
    "lpa": ligra_apps.ligra_lpa,
    "msf": ligra_apps.ligra_msf,
    "rc": ligra_apps.ligra_rc,
    "cl": ligra_apps.ligra_cl,
}

SUITES: Dict[str, Dict[str, Runner]] = {
    "pregel": PREGEL_SUITE,
    "gas": GAS_SUITE,
    "gemini": GEMINI_SUITE,
    "ligra": LIGRA_SUITE,
}


def can_express(framework: str, app: str) -> bool:
    """Whether a baseline can express an application at all (probed by
    calling its runner on a two-vertex graph)."""
    runner = SUITES[framework].get(app)
    if runner is None:
        return False
    probe = Graph.from_edges([(0, 1)], directed=(app == "scc"), num_vertices=2)
    try:
        runner(probe, num_workers=1)
    except InexpressibleError:
        return False
    except Exception:
        # Any other failure still means the model can express it.
        return True
    return True
