"""A Gemini-style framework (Zhu et al. [11]).

Gemini is a computation-centric distributed system with a dual-mode
(push/pull) edge-processing loop — very close to FLASH's runtime — but
with a *much more restricted programming model* (§II, §V):

* vertex state must be **fixed-width numeric** data (no sets, lists or
  dicts) — which is why TC, GC and LPA are inexpressible on it;
* communication is strictly along the graph's edges — no virtual edge
  sets, no arbitrary-vertex ``get``;
* the dense (pull) kernel scans *all* in-edges of every vertex — Gemini
  has no per-target early-exit condition (FLASH's ``C`` break), so dense
  supersteps charge proportionally more work;
* reductions must be associative and commutative.

We implement it as a restricted subclass of the FLASH engine: the same
dual-mode kernels and mirror accounting, with the restrictions enforced
at the API boundary (so inexpressibility arises structurally).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.edgeset import BaseEdges, EdgeSet, ReverseEdges
from repro.core.engine import FlashEngine
from repro.core.subset import VertexSubset
from repro.core.vertex import VertexView
from repro.errors import InexpressibleError
from repro.graph.graph import Graph


def _check_numeric(name: str, default: Any) -> None:
    if default is not None and not isinstance(default, (int, float, bool)):
        raise InexpressibleError(
            f"Gemini vertex state is fixed-width numeric; property {name!r} "
            f"with default {type(default).__name__} is not expressible"
        )


def _check_edges(edges: EdgeSet) -> None:
    inner = edges
    while isinstance(inner, ReverseEdges):
        inner = inner.inner
    if not isinstance(inner, BaseEdges):
        raise InexpressibleError(
            "Gemini only communicates along the graph's own edges; custom or "
            "virtual edge sets are not expressible"
        )


class GeminiFramework(FlashEngine):
    """FLASH engine restricted to Gemini's model."""

    framework_name = "gemini"

    def __init__(self, graph: Graph, num_workers: int = 4, **kwargs):
        super().__init__(graph, num_workers=num_workers, **kwargs)

    # -- restrictions ----------------------------------------------------
    def add_property(self, name: str, default: Any = None, factory: Optional[Callable] = None) -> None:
        if factory is not None:
            raise InexpressibleError(
                "Gemini vertex state is fixed-width numeric; factory-built "
                "(variable-length) properties are not expressible"
            )
        _check_numeric(name, default)
        super().add_property(name, default=default)

    def get(self, vid: int) -> VertexView:
        raise InexpressibleError(
            "Gemini has no arbitrary-vertex read; state is only visible "
            "along edges"
        )

    def collect(self, items_per_vertex, label: str = "reduce"):
        raise InexpressibleError("Gemini has no global gather primitive")

    def dsu(self):
        raise InexpressibleError("Gemini provides no distributed disjoint-set helper")

    # -- kernels ----------------------------------------------------------
    def edge_map_dense(self, subset, edges, F=None, M=None, C=None, label="", spec=None):
        _check_edges(edges)
        # Gemini's pull mode has no early-exit condition: fold C into F so
        # every in-edge is scanned (and charged).  The folded closure is no
        # longer described by the algorithm's kernel spec, so drop it.
        if C is not None:
            original_f = F

            def gated(s, d, _F=original_f, _C=C):
                return _C(d) and (_F is None or _F(s, d))

            F = gated
            C = None
            spec = None
        return super().edge_map_dense(subset, edges, F, M, C, label=label, spec=spec)

    def edge_map_sparse(self, subset, edges, F=None, M=None, C=None, R=None, label="", spec=None):
        _check_edges(edges)
        return super().edge_map_sparse(subset, edges, F, M, C, R, label=label, spec=spec)

    def edge_map(self, subset, edges, F=None, M=None, C=None, R=None, label="", spec=None):
        _check_edges(edges)
        if R is None:
            raise InexpressibleError(
                "Gemini's push/pull loop requires an associative, commutative "
                "reduction"
            )
        return super().edge_map(subset, edges, F, M, C, R, label=label, spec=spec)
