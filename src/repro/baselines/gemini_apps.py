"""The Gemini algorithm suite.

Everything numeric and edge-local reuses the FLASH program verbatim on
the restricted :class:`~repro.baselines.gemini.GeminiFramework` (the
models coincide there — Gemini is the efficiency yardstick among the
baselines).  MIS is re-expressed without FLASH's filtered edge sets,
using Gemini's active-bitmap idiom.  TC/GC/LPA/KC and every optimized
variant raise :class:`~repro.errors.InexpressibleError` — matching
Table I / Table V's empty entries.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import bc as flash_bc
from repro.algorithms import bfs as flash_bfs
from repro.algorithms import cc_basic as flash_cc
from repro.algorithms import mm_basic as flash_mm
from repro.algorithms import sssp as flash_sssp
from repro.baselines.base import BaselineResult
from repro.baselines.gemini import GeminiFramework
from repro.core.primitives import bind, ctrue
from repro.errors import InexpressibleError, ReproError
from repro.graph.graph import Graph


def _wrap(result, framework_name: str = "gemini") -> BaselineResult:
    return BaselineResult(
        result.name,
        framework_name,
        result.values,
        result.engine.metrics,
        iterations=result.iterations,
        extra=result.extra,
    )


def gemini_bfs(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    return _wrap(flash_bfs(GeminiFramework(graph, num_workers), root=root))


def gemini_cc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    return _wrap(flash_cc(GeminiFramework(graph, num_workers)))


def gemini_bc(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    return _wrap(flash_bc(GeminiFramework(graph, num_workers), root=root))


def gemini_mm(graph: Graph, num_workers: int = 4) -> BaselineResult:
    return _wrap(flash_mm(GeminiFramework(graph, num_workers)))


def gemini_sssp(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    return _wrap(flash_sssp(GeminiFramework(graph, num_workers), root=root))


def gemini_mis(graph: Graph, num_workers: int = 4, max_iterations: int = 100_000) -> BaselineResult:
    """Luby-style MIS using Gemini's active-bitmap idiom: the per-round
    candidate set lives in a numeric flag property, and all traffic goes
    along the graph's own edges."""
    eng = GeminiFramework(graph, num_workers)
    n = graph.num_vertices
    eng.add_property("d", False)  # decided-out
    eng.add_property("b", True)  # candidate flag this round
    eng.add_property("a", True)  # still active (undecided)
    eng.add_property("r", 0)

    def init(v, num_vertices):
        v.r = v.deg * num_vertices + v.id
        return v

    def f1(s, d):
        return s.d == False and s.a == True and s.r < d.r  # noqa: E712

    def block(s, d):
        d.b = False
        return d

    def r1(t, d):
        return t

    def cond_candidate(v):
        return v.a == True and v.b == True  # noqa: E712

    def winner(v):
        return v.a == True and v.b == True  # noqa: E712

    def mark_win(v):
        v.a = False
        return v

    def kill(s, d):
        return d

    def r2(t, d):
        d.d = True
        d.a = False
        return d

    def cond_alive(v):
        return v.d == False and v.a == True  # noqa: E712

    def still_active(v):
        return v.a == True  # noqa: E712

    def reset(v):
        v.b = True
        return v

    eng.vertex_map(eng.V, ctrue, bind(init, n), label="mis:init")
    active = eng.V
    iterations = 0
    winners_all = set()
    while eng.size(active) != 0:
        iterations += 1
        if iterations > max_iterations:
            raise ReproError("gemini mis failed to converge")
        eng.edge_map(eng.V, eng.E, f1, block, cond_candidate, r1, label="mis:block")
        winners = eng.vertex_map(active, winner, mark_win, label="mis:winners")
        winners_all.update(winners)
        eng.edge_map_sparse(winners, eng.E, ctrue, kill, cond_alive, r2, label="mis:kill")
        active = eng.vertex_map(eng.V, still_active, reset, label="mis:next")

    values = [v in winners_all for v in range(n)]
    return BaselineResult("mis", "gemini", values, eng.metrics, iterations, {"size": len(winners_all)})


def _inexpressible(what: str, why: str):
    def fn(graph: Graph, num_workers: int = 4, **_: Any) -> BaselineResult:
        raise InexpressibleError(f"{what} is inexpressible on Gemini: {why}")

    fn.__name__ = f"gemini_{what}"
    return fn


gemini_tc = _inexpressible("tc", "needs variable-length neighbor-list properties")
gemini_gc = _inexpressible("gc", "needs a variable-length forbidden-color set per vertex")
gemini_lpa = _inexpressible("lpa", "needs variable-length label multisets per vertex")
gemini_kc = _inexpressible("kc", "needs the multi-phase peeling control flow")
gemini_cc_opt = _inexpressible("cc_opt", "hooking writes beyond the neighborhood")
gemini_mm_opt = _inexpressible("mm_opt", "requires user-defined edge sets")
gemini_scc = _inexpressible("scc", "needs per-round subgraph restriction")
gemini_bcc = _inexpressible("bcc", "needs tree walks and disjoint sets")
gemini_msf = _inexpressible("msf", "needs a global edge ordering")
gemini_rc = _inexpressible("rc", "needs two-hop virtual edges")
gemini_cl = _inexpressible("cl", "needs arbitrary-vertex neighbor-set reads")
