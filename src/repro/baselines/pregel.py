"""A Pregel+-style vertex-centric framework (Malewicz et al. [6],
Yan et al. [13]).

The model: in each superstep every active vertex runs ``compute``,
reading the messages sent to it in the previous superstep and sending
new messages (usually to neighbors, but any known vertex id is legal).
A vertex votes to halt and is reawakened by incoming messages; execution
ends when every vertex is halted and no messages are in flight.

Supported extras, as in Pregel+:

* **combiners** — commutative/associative message pre-aggregation,
  applied per (source worker, target) before the network and again at
  the receiver (the paper credits Pregel+ with "effective message
  reduction");
* **aggregators** with a **master compute** hook — global values reduced
  each superstep and broadcast to the next (used for coordination in
  multi-phase algorithms).

Message accounting: a combined message crossing workers is one message
with one value (plus ``len`` values for collection payloads); local
messages are free.  Compute work is charged per compute call plus per
message sent/processed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines.base import BaselineFramework
from repro.errors import ReproError
from repro.graph.graph import Graph


def _payload_size(message: Any) -> int:
    """Approximate value count of a message (collections count their
    elements — neighbor-list exchanges are *expensive*, as in reality)."""
    if isinstance(message, (list, tuple, set, frozenset, dict)):
        return max(len(message), 1)
    return 1


class PregelVertex:
    """Handle passed to ``compute``: the vertex's id, mutable value and
    read-only adjacency."""

    __slots__ = ("id", "_framework", "value")

    def __init__(self, vid: int, framework: "PregelFramework", value: Any):
        self.id = vid
        self._framework = framework
        self.value = value

    @property
    def out_neighbors(self):
        return self._framework.graph.out_neighbors(self.id)

    @property
    def in_neighbors(self):
        return self._framework.graph.in_neighbors(self.id)

    @property
    def out_degree(self) -> int:
        return self._framework.graph.out_degree(self.id)

    @property
    def degree(self) -> int:
        return self._framework.graph.degree(self.id)


class PregelContext:
    """Per-superstep facade: message sending, halting, aggregation."""

    def __init__(self, framework: "PregelFramework"):
        self._fw = framework
        self.superstep = 0
        self._vid = 0
        self._halt_requested = False
        self._outbox: List[Tuple[int, int, Any]] = []  # (source, target, message)
        self._agg_contrib: Dict[str, List[Any]] = {}
        self._agg_broadcast: Dict[str, Any] = {}

    # -- messaging -----------------------------------------------------
    def send(self, target: int, message: Any) -> None:
        """Send ``message`` to vertex ``target`` (delivered next superstep)."""
        self._outbox.append((self._vid, int(target), message))

    def send_to_neighbors(self, vertex: PregelVertex, message: Any) -> None:
        for t in vertex.out_neighbors:
            self._outbox.append((self._vid, int(t), message))

    # -- control -------------------------------------------------------
    def vote_to_halt(self) -> None:
        self._halt_requested = True

    # -- aggregators ---------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a registered aggregator (reduced after the
        superstep, visible next superstep)."""
        self._agg_contrib.setdefault(name, []).append(value)

    def aggregated(self, name: str, default: Any = None) -> Any:
        """The reduced value of ``name`` from the previous superstep (or
        a master-compute broadcast)."""
        return self._agg_broadcast.get(name, default)

    @property
    def num_vertices(self) -> int:
        return self._fw.graph.num_vertices


class PregelProgram:
    """Base class for Pregel programs."""

    #: Optional commutative/associative message combiner ``(a, b) -> c``.
    combiner: Optional[Callable[[Any, Any], Any]] = None
    #: name -> reduce function for aggregators.
    aggregators: Dict[str, Callable[[Any, Any], Any]] = {}

    def initial_value(self, vid: int, graph: Graph) -> Any:
        raise NotImplementedError

    def initial_active(self, vid: int, graph: Graph) -> bool:
        return True

    def compute(self, ctx: PregelContext, vertex: PregelVertex, messages: List[Any]) -> None:
        raise NotImplementedError

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        """Runs after each superstep on the master; the returned dict is
        broadcast and visible via ``ctx.aggregated`` next superstep."""
        return aggregated


class PregelFramework(BaselineFramework):
    """The BSP driver."""

    framework_name = "pregel"

    def run(
        self,
        program: PregelProgram,
        max_supersteps: int = 100_000,
        label: str = "",
    ) -> List[Any]:
        """Run ``program`` to completion and return the vertex values."""
        graph = self.graph
        n = graph.num_vertices
        values: List[Any] = [program.initial_value(v, graph) for v in range(n)]
        halted: List[bool] = [not program.initial_active(v, graph) for v in range(n)]
        inbox: Dict[int, List[Any]] = {}
        ctx = PregelContext(self)
        label = label or type(program).__name__

        superstep = 0
        while True:
            active = [v for v in range(n) if not halted[v] or v in inbox]
            if not active:
                break
            if superstep >= max_supersteps:
                raise ReproError(f"pregel program {label} exceeded {max_supersteps} supersteps")

            rec = self.metrics.new_record("pregel", label)
            rec.frontier_in = len(active)
            ctx.superstep = superstep
            ctx._outbox = []
            ctx._agg_contrib = {}

            for vid in active:
                worker = self.owner(vid)
                messages = inbox.pop(vid, [])
                handle = PregelVertex(vid, self, values[vid])
                ctx._vid = vid
                ctx._halt_requested = False
                sent_before = len(ctx._outbox)
                program.compute(ctx, handle, messages)
                values[vid] = handle.value
                halted[vid] = ctx._halt_requested
                self.metrics.records[-1].worker_ops[worker] += (
                    1 + len(messages) + (len(ctx._outbox) - sent_before)
                )

            # Deliver messages: combine per (source worker, target) to model
            # Pregel+'s sender-side combining, then fully at the receiver.
            inbox = {}
            per_route: Dict[Tuple[int, int], List[Any]] = {}
            for source, target, message in ctx._outbox:
                per_route.setdefault((self.owner(source), target), []).append(message)
            for (src_worker, target), msgs in per_route.items():
                if program.combiner is not None:
                    combined = msgs[0]
                    for m in msgs[1:]:
                        combined = program.combiner(combined, m)
                    msgs = [combined]
                if src_worker != self.owner(target):
                    rec.reduce_messages += len(msgs)
                    rec.reduce_values += sum(_payload_size(m) for m in msgs)
                inbox.setdefault(target, []).extend(msgs)

            # Aggregators: one contribution message per worker per name.
            reduced: Dict[str, Any] = {}
            for name, contributions in ctx._agg_contrib.items():
                fn = program.aggregators.get(name)
                if fn is None:
                    raise ReproError(f"aggregator {name!r} not registered on {label}")
                acc = contributions[0]
                for c in contributions[1:]:
                    acc = fn(acc, c)
                reduced[name] = acc
                rec.reduce_messages += max(self.num_workers - 1, 0)
                rec.reduce_values += max(self.num_workers - 1, 0)
            broadcast = program.master_compute(ctx, reduced)
            if broadcast:
                rec.sync_messages += max(self.num_workers - 1, 0)
                rec.sync_values += sum(_payload_size(v) for v in broadcast.values()) * max(
                    self.num_workers - 1, 0
                )
            ctx._agg_broadcast = broadcast or {}

            rec.frontier_out = len(inbox)
            superstep += 1

        return values

    def chain_cost(self, label: str = "chain") -> None:
        """Charge the data-sharing superstep between chained sub-algorithms
        (the paper: "the data sharing time ... among sub-algorithms will
        be recorded")."""
        rec = self.metrics.new_record("pregel_chain", label)
        n = self.graph.num_vertices
        per_worker = n // max(self.num_workers, 1) + 1
        for w in range(self.num_workers):
            rec.worker_ops[w] = per_worker
        rec.sync_messages += self.num_workers
        rec.sync_values += n
