"""Shared substrate for the baseline frameworks.

All baselines partition the graph the same way FLASH does and record
into the same :class:`~repro.runtime.metrics.Metrics`, so the cost model
compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.graph.graph import Graph
from repro.graph.partition import PartitionMap, partition_graph
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostBreakdown, CostModel
from repro.runtime.metrics import Metrics


@dataclass
class BaselineResult:
    """Outcome of a baseline algorithm run."""

    name: str
    framework: str
    values: Any
    metrics: Metrics
    iterations: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def cost(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> CostBreakdown:
        if cluster is None:
            cluster = ClusterSpec(nodes=self.metrics.num_workers, cores_per_node=32)
        return (model or CostModel()).estimate(self.metrics, cluster)


class BaselineFramework:
    """Base class: graph + partitioning + metrics."""

    framework_name = "baseline"

    def __init__(self, graph: Graph, num_workers: int = 4, partition_strategy: str = "hash"):
        self.graph = graph
        self.partition: PartitionMap = partition_graph(graph, num_workers, partition_strategy)
        self.metrics = Metrics(num_workers)

    @property
    def num_workers(self) -> int:
        return self.partition.num_partitions

    def owner(self, vid: int) -> int:
        return self.partition.owner_of(vid)
