"""A Ligra-style shared-memory engine (Shun & Blelloch [21]).

Ligra pioneered the ``vertexSubset`` + ``edgeMap``/``vertexMap``
interface that FLASH extends, but it is a *single-machine* framework:

* it runs on one node — there are no partitions, mirrors or network
  messages at all (its big advantage on communication-bound workloads,
  §V-B, and its scalability ceiling);
* ``edgeMap`` only traverses the graph's own edges — no virtual or
  beyond-neighborhood sets (filtering targets by a subset is fine:
  that's Ligra's ``C``/output semantics);
* vertex data are flat arrays of fixed-width values — set- or
  dict-valued properties are not expressible (the paper cites this for
  GC); neighbor-list algorithms like TC instead intersect the in-memory
  adjacency arrays directly, which shared memory permits.

Implemented as a FLASH engine pinned to one worker with the above
restrictions enforced.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.core.edgeset import (
    BaseEdges,
    EdgeSet,
    ReverseEdges,
    SourceFilteredEdges,
    TargetFilteredEdges,
)
from repro.core.engine import FlashEngine
from repro.errors import InexpressibleError
from repro.graph.graph import Graph


def _check_edges(edges: EdgeSet) -> None:
    inner = edges
    while isinstance(inner, (ReverseEdges, TargetFilteredEdges, SourceFilteredEdges)):
        inner = inner.inner
    if not isinstance(inner, BaseEdges):
        raise InexpressibleError(
            "Ligra's edgeMap only traverses the graph's edges; virtual or "
            "user-defined edge sets are not expressible"
        )


class LigraEngine(FlashEngine):
    """FLASH engine restricted to Ligra's shared-memory model."""

    framework_name = "ligra"

    def __init__(self, graph: Graph, num_workers: int = 1, **kwargs):
        if num_workers != 1:
            raise InexpressibleError("Ligra is a shared-memory (single node) framework")
        super().__init__(graph, num_workers=1, **kwargs)

    # -- restrictions ----------------------------------------------------
    def add_property(self, name: str, default: Any = None, factory: Optional[Callable] = None) -> None:
        if factory is not None or not isinstance(default, (int, float, bool, type(None))):
            raise InexpressibleError(
                "Ligra vertex data are flat fixed-width arrays; "
                f"variable-length property {name!r} is not expressible"
            )
        super().add_property(name, default=default)

    def collect(self, items_per_vertex, label: str = "reduce"):
        raise InexpressibleError("Ligra has no distributed gather primitive")

    def edge_map_dense(self, subset, edges, F=None, M=None, C=None, label="", spec=None):
        _check_edges(edges)
        return super().edge_map_dense(subset, edges, F, M, C, label=label, spec=spec)

    def edge_map_sparse(self, subset, edges, F=None, M=None, C=None, R=None, label="", spec=None):
        _check_edges(edges)
        return super().edge_map_sparse(subset, edges, F, M, C, R, label=label, spec=spec)

    def edge_map(self, subset, edges, F=None, M=None, C=None, R=None, label="", spec=None):
        _check_edges(edges)
        return super().edge_map(subset, edges, F, M, C, R, label=label, spec=spec)

    # -- shared-memory extras ---------------------------------------------
    def adjacency(self, vid: int) -> np.ndarray:
        """Direct read of a vertex's adjacency array — legal in shared
        memory (used by Ligra's TC)."""
        return self.graph.out_neighbors(vid)
