"""The Ligra algorithm suite.

Ligra's interface is the closest to FLASH's, so the numeric, edge-local
programs run verbatim on the restricted single-node
:class:`~repro.baselines.ligra.LigraEngine` — with zero network cost,
which is Ligra's whole advantage in Table V.  TC intersects the shared
in-memory adjacency arrays directly (Ligra's actual approach); GC, LPA
and everything needing virtual edges or distribution raise
:class:`~repro.errors.InexpressibleError`.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms import bc as flash_bc
from repro.algorithms import bfs as flash_bfs
from repro.algorithms import cc_basic as flash_cc
from repro.algorithms import kcore_basic as flash_kc
from repro.algorithms import mis as flash_mis
from repro.algorithms import mm_basic as flash_mm
from repro.algorithms import sssp as flash_sssp
from repro.baselines.base import BaselineResult
from repro.baselines.ligra import LigraEngine
from repro.core.primitives import ctrue
from repro.errors import InexpressibleError
from repro.graph.graph import Graph


def _wrap(result) -> BaselineResult:
    return BaselineResult(
        result.name,
        "ligra",
        result.values,
        result.engine.metrics,
        iterations=result.iterations,
        extra=result.extra,
    )


def ligra_bfs(graph: Graph, root: int = 0, **_: Any) -> BaselineResult:
    return _wrap(flash_bfs(LigraEngine(graph), root=root))


def ligra_cc(graph: Graph, **_: Any) -> BaselineResult:
    return _wrap(flash_cc(LigraEngine(graph)))


def ligra_bc(graph: Graph, root: int = 0, **_: Any) -> BaselineResult:
    return _wrap(flash_bc(LigraEngine(graph), root=root))


def ligra_mis(graph: Graph, **_: Any) -> BaselineResult:
    return _wrap(flash_mis(LigraEngine(graph)))


def ligra_mm(graph: Graph, **_: Any) -> BaselineResult:
    return _wrap(flash_mm(LigraEngine(graph)))


def ligra_kc(graph: Graph, **_: Any) -> BaselineResult:
    return _wrap(flash_kc(LigraEngine(graph)))


def ligra_sssp(graph: Graph, root: int = 0, **_: Any) -> BaselineResult:
    return _wrap(flash_sssp(LigraEngine(graph), root=root))


def ligra_tc(graph: Graph, **_: Any) -> BaselineResult:
    """Triangle counting by intersecting the shared adjacency arrays
    (each triangle counted at its lowest-ranked vertex)."""
    eng = LigraEngine(graph)
    eng.add_property("count", 0)
    degs = graph.degrees()

    def higher(vid: int) -> set:
        mine = (int(degs[vid]), vid)
        return {int(u) for u in eng.adjacency(vid) if (int(degs[u]), int(u)) > mine}

    def count_at(v):
        mine = higher(v.id)
        total = 0
        for u in mine:
            others = higher(u)
            total += len(mine & others)
            eng.flashware.charge_ops(0, len(others))
        v.count = total
        return v

    eng.vertex_map(eng.V, ctrue, count_at, label="tc:count")
    counts = eng.values("count")
    return BaselineResult(
        "tc", "ligra", counts, eng.metrics, iterations=1, extra={"total": sum(counts)}
    )


def _inexpressible(what: str, why: str):
    def fn(graph: Graph, **_: Any) -> BaselineResult:
        raise InexpressibleError(f"{what} is inexpressible on Ligra: {why}")

    fn.__name__ = f"ligra_{what}"
    return fn


ligra_gc = _inexpressible("gc", "needs variable-length per-vertex color sets")
ligra_lpa = _inexpressible("lpa", "needs variable-length label multisets")
ligra_cc_opt = _inexpressible("cc_opt", "needs virtual parent-pointer edges")
ligra_mm_opt = _inexpressible("mm_opt", "needs user-defined edge sets")
ligra_scc = _inexpressible("scc", "needs multi-round subgraph restriction with colors")
ligra_bcc = _inexpressible("bcc", "needs disjoint-set reductions outside edgeMap")
ligra_msf = _inexpressible("msf", "needs a global edge ordering")
ligra_rc = _inexpressible("rc", "needs two-hop virtual edges")
ligra_cl = _inexpressible("cl", "needs arbitrary neighbor-set properties")
