"""The PowerGraph (GAS) algorithm suite.

GAS expresses the single-loop applications directly; BC and KC need a
python-side driver chaining restricted runs (PowerGraph engine restarts),
and CC-opt / MM-opt / SCC / BCC / MSF / RC / CL are inexpressible
(Table I) because they require beyond-neighborhood communication,
arbitrary vertex sets, or non-vertex-centric reductions.

Every public function has the signature
``gas_<app>(graph, num_workers=4, ...) -> BaselineResult``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.base import BaselineResult
from repro.baselines.gas import GASContext, GASFramework, GASProgram
from repro.errors import InexpressibleError
from repro.graph.graph import Graph

INF = float("inf")


def _rank(graph: Graph, vid: int) -> Tuple[int, int]:
    return (graph.degree(vid), vid)


# ----------------------------------------------------------------------
# CC — min-label
# ----------------------------------------------------------------------
class _CC(GASProgram):
    def initial_value(self, vid, graph):
        return vid

    def gather(self, ctx, vid, value, nbr, nbr_value):
        return nbr_value

    def accum(self, a, b):
        return min(a, b)

    def apply(self, ctx, vid, value, acc):
        return value if acc is None else min(value, acc)

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return changed and value < nbr_value


def gas_cc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_CC(), label="cc")
    return BaselineResult("cc", "gas", values, fw.metrics)


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
class _BFS(GASProgram):
    def __init__(self, root: int):
        self.root = root

    def initial_value(self, vid, graph):
        return 0 if vid == self.root else INF

    def initial_active(self, vid, graph):
        return vid == self.root

    def gather(self, ctx, vid, value, nbr, nbr_value):
        return nbr_value + 1

    def accum(self, a, b):
        return min(a, b)

    def apply(self, ctx, vid, value, acc):
        return value if acc is None else min(value, acc)

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return nbr_value == INF and (changed or ctx.iteration == 0)


def gas_bfs(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_BFS(root), label="bfs")
    return BaselineResult("bfs", "gas", values, fw.metrics)


# ----------------------------------------------------------------------
# BC — driver-chained forward/backward level sweeps
# ----------------------------------------------------------------------
class _BCForward(GASProgram):
    """One iteration assigns one BFS level; value = [level, num]."""

    def __init__(self, root: int):
        self.root = root

    def initial_value(self, vid, graph):
        return [0, 1.0] if vid == self.root else [-1, 0.0]

    def initial_active(self, vid, graph):
        return vid == self.root

    def gather(self, ctx, vid, value, nbr, nbr_value):
        # Unvisited vertices sum path counts from the previous frontier
        # (level = iteration - 1); level-i vertices are assigned at
        # iteration i.
        if value[0] == -1 and nbr_value[0] == ctx.iteration - 1:
            return nbr_value[1]
        return None

    def accum(self, a, b):
        return a + b

    def apply(self, ctx, vid, value, acc):
        if value[0] == -1 and acc is not None:
            return [ctx.iteration, acc]
        return value

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        # The fresh frontier (and the root at iteration 0) activates its
        # neighbors for the next level.
        return (value[0] == ctx.iteration and changed) or (
            ctx.iteration == 0 and vid == self.root
        )


class _BCBackwardStep(GASProgram):
    """One backward accumulation for a single level (driver-run)."""

    def __init__(self, level: int):
        self.level = level

    def initial_value(self, vid, graph):  # pragma: no cover - driver passes values
        raise RuntimeError("driver must supply initial_values")

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if value[0] == self.level and nbr_value[0] == self.level + 1:
            return value[1] / nbr_value[1] * (1 + nbr_value[2])
        return None

    def accum(self, a, b):
        return a + b

    def apply(self, ctx, vid, value, acc):
        if acc is not None:
            return [value[0], value[1], value[2] + acc]
        return value


def gas_bc(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    forward = fw.run(_BCForward(root), label="bc:forward")
    max_level = max((lv for lv, _ in forward), default=0)
    fw.chain_cost("bc:chain")
    values = [[lv, num, 0.0] for lv, num in forward]
    for level in range(max_level - 1, -1, -1):
        frontier = [v for v in range(graph.num_vertices) if values[v][0] == level]
        values = fw.run(
            _BCBackwardStep(level),
            max_iterations=1,
            initial_values=values,
            initial_active=frontier,
            label="bc:backward",
        )
    deltas = [b for _, _, b in values]
    deltas[root] = 0.0
    return BaselineResult("bc", "gas", deltas, fw.metrics, extra={"levels": max_level})


# ----------------------------------------------------------------------
# MIS — Luby rounds (two iterations per round)
# ----------------------------------------------------------------------
_UNDECIDED, _IN, _OUT = 0, 1, 2


class _MIS(GASProgram):
    gather_edges = "in"

    def initial_value(self, vid, graph):
        return [_UNDECIDED, graph.degree(vid) * graph.num_vertices + vid]

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if ctx.iteration % 2 == 0:
            # Round phase A: minimum rank among undecided neighbors.
            if nbr_value[0] == _UNDECIDED:
                return nbr_value[1]
            return None
        # Round phase B: did any neighbor enter the set?
        return 1 if nbr_value[0] == _IN else None

    def accum(self, a, b):
        return min(a, b)  # min serves both phases (phase B gathers 1s)

    def apply(self, ctx, vid, value, acc):
        state, rank = value
        if state != _UNDECIDED:
            return value
        if ctx.iteration % 2 == 0:
            if acc is None or rank < acc:
                return [_IN, rank]
            return value
        if acc is not None:
            return [_OUT, rank]
        return value

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        # Freshly decided vertices wake their neighbors; undecided ones
        # keep their neighborhood computing.
        return value[0] == _UNDECIDED or changed

    def keep_active(self, ctx, vid, value):
        return value[0] == _UNDECIDED


def gas_mis(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_MIS(), label="mis")
    members = [state == _IN for state, _ in values]
    return BaselineResult("mis", "gas", members, fw.metrics, extra={"size": sum(members)})


# ----------------------------------------------------------------------
# MM — handshake rounds (two iterations per round)
# ----------------------------------------------------------------------
class _MM(GASProgram):
    def initial_value(self, vid, graph):
        return [-1, -1]  # [partner, best proposer]

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if value[0] != -1:
            return None
        if ctx.iteration % 2 == 0:
            # Phase A: best (max id) unmatched neighbor.
            if nbr_value[0] == -1:
                return nbr
            return None
        # Phase B: mutual handshake — neighbor whose best is me and who is
        # my best.
        if nbr_value[0] == -1 and nbr_value[1] == vid and value[1] == nbr:
            return nbr
        return None

    def accum(self, a, b):
        return max(a, b)

    def apply(self, ctx, vid, value, acc):
        partner, best = value
        if partner != -1:
            return value
        if ctx.iteration % 2 == 0:
            return [partner, acc if acc is not None else -1]
        if acc is not None:
            return [acc, best]
        return value

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return value[0] == -1 or changed

    def keep_active(self, ctx, vid, value):
        # Unmatched vertices stay active while they still see a proposer;
        # once phase A finds none (best == -1) they retire for good.
        return value[0] == -1 and (ctx.iteration % 2 == 1 or value[1] != -1)


def gas_mm(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_MM(), label="mm")
    partners = [p for p, _ in values]
    pairs = [(v, p) for v, p in enumerate(partners) if p != -1 and v < p]
    return BaselineResult("mm", "gas", partners, fw.metrics, extra={"matching": pairs})


# ----------------------------------------------------------------------
# KC — peeling with a python-side driver per k
# ----------------------------------------------------------------------
class _KCPeel(GASProgram):
    """One peel sweep at threshold k; value = [core, removed]."""

    def __init__(self, k: int):
        self.k = k

    def initial_value(self, vid, graph):  # pragma: no cover - driver supplies
        raise RuntimeError("driver must supply initial_values")

    def gather(self, ctx, vid, value, nbr, nbr_value):
        return None if nbr_value[1] else 1

    def accum(self, a, b):
        return a + b

    def apply(self, ctx, vid, value, acc):
        if value[1]:
            return value
        live = acc if acc is not None else 0
        if live < self.k:
            return [self.k - 1, 1]
        return value

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return changed and not nbr_value[1]


def gas_kc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    n = graph.num_vertices
    values: List[List[int]] = [[-1, 0] for _ in range(n)]
    k = 0
    while any(not removed for _, removed in values):
        k += 1
        active = [v for v in range(n) if not values[v][1]]
        while active:
            before = [v[1] for v in values]
            values = fw.run(
                _KCPeel(k), max_iterations=1, initial_values=values,
                initial_active=active, label="kc:peel",
            )
            active = [
                v for v in range(n)
                if not values[v][1] and any(
                    values[int(u)][1] and not before[int(u)]
                    for u in graph.out_neighbors(v)
                )
            ]
    return BaselineResult("kc", "gas", [core for core, _ in values], fw.metrics)


# ----------------------------------------------------------------------
# TC — neighbor-set gather then intersection count
# ----------------------------------------------------------------------
class _TCCollect(GASProgram):
    """value = [count, higher-neighbor frozenset]."""

    def initial_value(self, vid, graph):
        return [0, frozenset()]

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if _rank(ctx.graph, nbr) > _rank(ctx.graph, vid):
            return frozenset([nbr])
        return None

    def accum(self, a, b):
        return a | b

    def apply(self, ctx, vid, value, acc):
        return [0, acc if acc is not None else frozenset()]


class _TCCount(GASProgram):
    def initial_value(self, vid, graph):  # pragma: no cover - driver supplies
        raise RuntimeError("driver must supply initial_values")

    def gather(self, ctx, vid, value, nbr, nbr_value):
        # Count at the lowest vertex of each triangle: neighbor must
        # outrank me; shared higher-neighbors close triangles.
        if _rank(ctx.graph, nbr) > _rank(ctx.graph, vid):
            return len(value[1] & nbr_value[1])
        return None

    def accum(self, a, b):
        return a + b

    def apply(self, ctx, vid, value, acc):
        return [acc if acc is not None else 0, value[1]]


def gas_tc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_TCCollect(), max_iterations=1, label="tc:collect")
    fw.chain_cost("tc:chain")
    values = fw.run(_TCCount(), max_iterations=1, initial_values=values, label="tc:count")
    counts = [c for c, _ in values]
    return BaselineResult("tc", "gas", counts, fw.metrics, extra={"total": sum(counts)})


# ----------------------------------------------------------------------
# GC — greedy coloring
# ----------------------------------------------------------------------
class _GC(GASProgram):
    def initial_value(self, vid, graph):
        return 0

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if _rank(ctx.graph, nbr) > _rank(ctx.graph, vid):
            return frozenset([nbr_value])
        return None

    def accum(self, a, b):
        return a | b

    def apply(self, ctx, vid, value, acc):
        forbidden = acc if acc is not None else frozenset()
        color = 0
        while color in forbidden:
            color += 1
        return color

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return changed and _rank(ctx.graph, nbr) < _rank(ctx.graph, vid)


def gas_gc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_GC(), label="gc")
    return BaselineResult("gc", "gas", values, fw.metrics, extra={"num_colors": len(set(values))})


# ----------------------------------------------------------------------
# LPA — fixed-round most-frequent label
# ----------------------------------------------------------------------
class _LPA(GASProgram):
    def __init__(self, max_iters: int):
        self.max_iters = max_iters

    def initial_value(self, vid, graph):
        return vid

    def gather(self, ctx, vid, value, nbr, nbr_value):
        return {nbr_value: 1}

    def accum(self, a, b):
        merged = dict(a)
        for label, count in b.items():
            merged[label] = merged.get(label, 0) + count
        return merged

    def apply(self, ctx, vid, value, acc):
        if not acc:
            return value
        best, best_count = value, 0
        for label in sorted(acc):
            if acc[label] > best_count:
                best, best_count = label, acc[label]
        return best

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return ctx.iteration + 1 < self.max_iters


def gas_lpa(graph: Graph, num_workers: int = 4, max_iters: int = 10) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_LPA(max_iters), label="lpa")
    return BaselineResult("lpa", "gas", values, fw.metrics, extra={"num_labels": len(set(values))})


# ----------------------------------------------------------------------
# Inexpressible on GAS (Table I)
# ----------------------------------------------------------------------
def _inexpressible(what: str, why: str):
    def fn(graph: Graph, num_workers: int = 4, **_: Any) -> BaselineResult:
        raise InexpressibleError(f"{what} is inexpressible in the GAS model: {why}")

    fn.__name__ = f"gas_{what}"
    return fn


gas_cc_opt = _inexpressible("cc_opt", "hooking writes to non-neighbors (virtual parent edges)")
gas_mm_opt = _inexpressible("mm_opt", "requires user-defined edge sets over proposer pointers")
gas_scc = _inexpressible("scc", "needs per-round subgraph restriction and multi-phase control flow")
gas_bcc = _inexpressible("bcc", "needs tree walks and disjoint-set unions beyond neighborhoods")
gas_msf = _inexpressible("msf", "needs global edge ordering and component-level reduction")
gas_rc = _inexpressible("rc", "needs two-hop neighbor pairs")
gas_cl = _inexpressible("cl", "needs arbitrary-vertex neighbor-set reads")


# ----------------------------------------------------------------------
# SSSP and PageRank — PowerGraph's stock examples
# ----------------------------------------------------------------------
class _SSSP(GASProgram):
    def __init__(self, root: int):
        self.root = root

    def initial_value(self, vid, graph):
        return 0.0 if vid == self.root else INF

    def initial_active(self, vid, graph):
        return vid == self.root

    def gather(self, ctx, vid, value, nbr, nbr_value):
        if nbr_value == INF:
            return None
        return nbr_value + ctx.graph.weight(nbr, vid)

    def accum(self, a, b):
        return min(a, b)

    def apply(self, ctx, vid, value, acc):
        return value if acc is None else min(value, acc)

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return changed or (ctx.iteration == 0 and vid == self.root)


def gas_sssp(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_SSSP(root), label="sssp")
    return BaselineResult("sssp", "gas", values, fw.metrics)


class _PageRank(GASProgram):
    def __init__(self, max_iters: int, damping: float = 0.85):
        self.max_iters = max_iters
        self.damping = damping

    def initial_value(self, vid, graph):
        return 1.0 / max(graph.num_vertices, 1)

    def gather(self, ctx, vid, value, nbr, nbr_value):
        out_deg = ctx.graph.out_degree(nbr)
        return nbr_value / out_deg if out_deg else None

    def accum(self, a, b):
        return a + b

    def apply(self, ctx, vid, value, acc):
        total = acc if acc is not None else 0.0
        n = ctx.graph.num_vertices
        return (1.0 - self.damping) / n + self.damping * total

    def scatter(self, ctx, vid, value, changed, nbr, nbr_value):
        return ctx.iteration + 1 < self.max_iters


def gas_pagerank(graph: Graph, num_workers: int = 4, max_iters: int = 20) -> BaselineResult:
    fw = GASFramework(graph, num_workers)
    values = fw.run(_PageRank(max_iters), label="pagerank")
    return BaselineResult("pagerank", "gas", values, fw.metrics)


def gas_gc_async(graph: Graph, num_workers: int = 4) -> BaselineResult:
    """Asynchronous greedy coloring — PowerGraph's trick for GC (§V-B:
    "PowerGraph performs efficiently on GC since it implements an
    asynchronous algorithm, which converges faster than a BSP-based
    algorithm"; App. B-E adds that async "may result in more colors")."""
    fw = GASFramework(graph, num_workers)
    values = fw.run_async(_GC(), label="gc_async")
    return BaselineResult(
        "gc_async", "gas", values, fw.metrics, extra={"num_colors": len(set(values))}
    )
