"""The Pregel+ algorithm suite used as the paper's baseline.

Pregel can express every Table IV application except RC and CL (Table I),
but the multi-phase ones (BC, SCC, BCC, MSF) must be decomposed into
chained sub-algorithms coordinated through aggregators / master-compute —
which is exactly why the paper reports them as verbose and slow.  The
chaining data-sharing cost is charged explicitly
(:meth:`~repro.baselines.pregel.PregelFramework.chain_cost`).

Every public function has the signature
``pregel_<app>(graph, num_workers=4, ...) -> BaselineResult``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.base import BaselineResult
from repro.baselines.pregel import PregelContext, PregelFramework, PregelProgram, PregelVertex
from repro.core.dsu import DSU
from repro.errors import InexpressibleError
from repro.graph.graph import Graph

INF = float("inf")


# ----------------------------------------------------------------------
# CC — min-label propagation
# ----------------------------------------------------------------------
class _CCProgram(PregelProgram):
    combiner = staticmethod(min)

    def initial_value(self, vid: int, graph: Graph) -> int:
        return vid

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[int]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, v.value)
        else:
            smallest = min(messages) if messages else v.value
            if smallest < v.value:
                v.value = smallest
                ctx.send_to_neighbors(v, smallest)
        ctx.vote_to_halt()


def pregel_cc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_CCProgram(), label="cc")
    return BaselineResult("cc", "pregel", values, fw.metrics)


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
class _BFSProgram(PregelProgram):
    combiner = staticmethod(min)

    def __init__(self, root: int):
        self.root = root

    def initial_value(self, vid: int, graph: Graph) -> float:
        return 0 if vid == self.root else INF

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[int]) -> None:
        if ctx.superstep == 0:
            if v.id == self.root:
                ctx.send_to_neighbors(v, 1)
        elif v.value == INF and messages:
            v.value = min(messages)
            ctx.send_to_neighbors(v, v.value + 1)
        ctx.vote_to_halt()


def pregel_bfs(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_BFSProgram(root), label="bfs")
    return BaselineResult("bfs", "pregel", values, fw.metrics)


# ----------------------------------------------------------------------
# SSSP — the Pregel paper's canonical example
# ----------------------------------------------------------------------
class _SSSPProgram(PregelProgram):
    combiner = staticmethod(min)

    def __init__(self, root: int, graph: Graph):
        self.root = root
        self.graph = graph

    def initial_value(self, vid: int, graph: Graph) -> float:
        return 0.0 if vid == self.root else INF

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[float]) -> None:
        best = min(messages) if messages else INF
        if ctx.superstep == 0 and v.id == self.root:
            best = 0.0
        if best < v.value or (ctx.superstep == 0 and v.id == self.root):
            v.value = min(v.value, best)
            for t in v.out_neighbors:
                ctx.send(int(t), v.value + self.graph.weight(v.id, int(t)))
        ctx.vote_to_halt()


def pregel_sssp(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_SSSPProgram(root, graph), label="sssp")
    return BaselineResult("sssp", "pregel", values, fw.metrics)


# ----------------------------------------------------------------------
# PageRank — fixed-iteration power method
# ----------------------------------------------------------------------
class _PageRankProgram(PregelProgram):
    combiner = staticmethod(lambda a, b: a + b)

    def __init__(self, max_iters: int, damping: float = 0.85):
        self.max_iters = max_iters
        self.damping = damping

    def initial_value(self, vid: int, graph: Graph) -> float:
        return 1.0 / max(graph.num_vertices, 1)

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[float]) -> None:
        if ctx.superstep > 0:
            incoming = sum(messages)
            v.value = (1.0 - self.damping) / ctx.num_vertices + self.damping * incoming
        if ctx.superstep < self.max_iters:
            if v.out_degree:
                ctx.send_to_neighbors(v, v.value / v.out_degree)
        else:
            ctx.vote_to_halt()


def pregel_pagerank(graph: Graph, num_workers: int = 4, max_iters: int = 20) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_PageRankProgram(max_iters), label="pagerank")
    return BaselineResult("pagerank", "pregel", values, fw.metrics)


# ----------------------------------------------------------------------
# BC — two chained sub-algorithms (forward sigma/levels, backward delta)
# ----------------------------------------------------------------------
class _BCForward(PregelProgram):
    """Level-synchronous shortest-path counting: value = [level, num]."""

    aggregators = {"max_level": max}

    def __init__(self, root: int):
        self.root = root

    def initial_value(self, vid: int, graph: Graph) -> List[float]:
        return [0, 1.0] if vid == self.root else [-1, 0.0]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[float]) -> None:
        level, num = v.value
        if ctx.superstep == 0:
            if v.id == self.root:
                ctx.send_to_neighbors(v, num)
                ctx.aggregate("max_level", 0)
        elif level == -1 and messages:
            v.value = [ctx.superstep, sum(messages)]
            ctx.send_to_neighbors(v, v.value[1])
            ctx.aggregate("max_level", ctx.superstep)
        ctx.vote_to_halt()


class _BCBackward(PregelProgram):
    """Dependency accumulation, deepest level first.

    value = [level, num, b]; a vertex at level L sends at superstep
    ``max_level - L`` and accumulates from messages of level L+1.
    """

    def __init__(self, forward_values: List[List[float]], max_level: int):
        self.forward = forward_values
        self.max_level = max_level

    def initial_value(self, vid: int, graph: Graph) -> List[float]:
        level, num = self.forward[vid]
        return [level, num, 0.0]

    def initial_active(self, vid: int, graph: Graph) -> bool:
        return self.forward[vid][0] != -1

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Tuple[float, float, float]]) -> None:
        level, num, b = v.value
        for s_level, s_num, s_b in messages:
            if s_level == level + 1:
                b += num / s_num * (1 + s_b)
        v.value = [level, num, b]
        if level != -1 and ctx.superstep == self.max_level - level:
            ctx.send_to_neighbors(v, (level, num, b))
        if ctx.superstep >= self.max_level - max(level, 0):
            ctx.vote_to_halt()


def pregel_bc(graph: Graph, root: int = 0, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    forward = fw.run(_BCForward(root), label="bc:forward")
    max_level = max((int(lv) for lv, _ in forward if lv != -1), default=0)
    fw.chain_cost("bc:chain")
    values = fw.run(_BCBackward(forward, max_level), label="bc:backward")
    deltas = [b for _, _, b in values]
    deltas[root] = 0.0
    return BaselineResult("bc", "pregel", deltas, fw.metrics, extra={"levels": max_level})


# ----------------------------------------------------------------------
# MIS — Luby rounds (3 supersteps each)
# ----------------------------------------------------------------------
_UNDECIDED, _IN, _OUT = 0, 1, 2


class _MISProgram(PregelProgram):
    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [_UNDECIDED, graph.degree(vid) * graph.num_vertices + vid]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        state, rank = v.value
        if state != _UNDECIDED:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:
            ctx.send_to_neighbors(v, ("rank", rank))
        elif phase == 1:
            ranks = [m[1] for m in messages if m[0] == "rank"]
            if all(rank < r for r in ranks):
                v.value = [_IN, rank]
                ctx.send_to_neighbors(v, ("in", v.id))
        else:
            if any(m[0] == "in" for m in messages):
                v.value = [_OUT, rank]
                ctx.vote_to_halt()


def pregel_mis(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_MISProgram(), label="mis")
    members = [state == _IN for state, _ in values]
    return BaselineResult("mis", "pregel", members, fw.metrics, extra={"size": sum(members)})


# ----------------------------------------------------------------------
# MM — max-id handshaking rounds (3 supersteps each)
# ----------------------------------------------------------------------
class _MMProgram(PregelProgram):
    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [-1, -1]  # [partner, best proposer]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        partner, best = v.value
        if partner != -1:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:
            ctx.send_to_neighbors(v, ("prop", v.id))
        elif phase == 1:
            proposers = [m[1] for m in messages if m[0] == "prop"]
            if not proposers:
                ctx.vote_to_halt()  # no unmatched neighbors remain
                return
            best = max(proposers)
            v.value = [partner, best]
            ctx.send(best, ("chosen", v.id))
        else:
            choosers = {m[1] for m in messages if m[0] == "chosen"}
            if best in choosers:
                v.value = [best, best]


def pregel_mm(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_MMProgram(), label="mm")
    partners = [p for p, _ in values]
    pairs = [(v, p) for v, p in enumerate(partners) if p != -1 and v < p]
    return BaselineResult("mm", "pregel", partners, fw.metrics, extra={"matching": pairs})


# ----------------------------------------------------------------------
# KC — master-coordinated peeling
# ----------------------------------------------------------------------
class _KCProgram(PregelProgram):
    combiner = staticmethod(lambda a, b: a + b)
    aggregators = {"removed_any": lambda a, b: a or b}

    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [-1, graph.degree(vid), 0]  # [core, induced degree, removed]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[int]) -> None:
        core, deg, removed = v.value
        if removed:
            ctx.vote_to_halt()
            return
        deg -= sum(messages)
        k = ctx.aggregated("k", 1)
        if deg < k:
            v.value = [k - 1, deg, 1]
            ctx.send_to_neighbors(v, 1)
            ctx.aggregate("removed_any", True)
            ctx.vote_to_halt()
        else:
            v.value = [core, deg, 0]
            # Stay awake: the next k arrives by broadcast, not by message.

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        k = ctx.aggregated("k", 1)
        if not aggregated.get("removed_any"):
            k += 1
        return {"k": k}


def pregel_kc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_KCProgram(), label="kc")
    return BaselineResult("kc", "pregel", [core for core, _, _ in values], fw.metrics)


# ----------------------------------------------------------------------
# TC — neighbor-list exchange (3 supersteps, heavy messages)
# ----------------------------------------------------------------------
class _TCProgram(PregelProgram):
    def initial_value(self, vid: int, graph: Graph) -> List[Any]:
        return [0, frozenset()]  # [count, higher-ranked neighbor set]

    @staticmethod
    def _rank(deg: int, vid: int) -> Tuple[int, int]:
        return (deg, vid)

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        count, higher = v.value
        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, ("deg", v.id, v.degree))
        elif ctx.superstep == 1:
            mine = self._rank(v.degree, v.id)
            higher = frozenset(
                vid for _, vid, deg in messages if self._rank(deg, vid) > mine
            )
            v.value = [count, higher]
            for u in higher:
                ctx.send(u, ("nbrs", higher))
            ctx.vote_to_halt()
        else:
            for _, nbrs in messages:
                count += len(nbrs & higher)
            v.value = [count, higher]
            ctx.vote_to_halt()


def pregel_tc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_TCProgram(), label="tc")
    counts = [c for c, _ in values]
    return BaselineResult("tc", "pregel", counts, fw.metrics, extra={"total": sum(counts)})


# ----------------------------------------------------------------------
# GC — greedy coloring with change detection
# ----------------------------------------------------------------------
class _GCProgram(PregelProgram):
    aggregators = {"changed": lambda a, b: a or b}

    def initial_value(self, vid: int, graph: Graph) -> int:
        return 0

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        if ctx.aggregated("done", False):
            ctx.vote_to_halt()
            return
        mine = (v.degree, v.id)
        forbidden = {color for rank, color in messages if rank > mine}
        color = 0
        while color in forbidden:
            color += 1
        if messages and color != v.value:
            v.value = color
            ctx.aggregate("changed", True)
        ctx.send_to_neighbors(v, (mine, v.value))

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        if ctx.superstep > 0 and not aggregated.get("changed", False):
            return {"done": True}
        return {}


def pregel_gc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_GCProgram(), label="gc")
    return BaselineResult(
        "gc", "pregel", values, fw.metrics, extra={"num_colors": len(set(values))}
    )


# ----------------------------------------------------------------------
# LPA — most-frequent-label adoption, fixed rounds
# ----------------------------------------------------------------------
class _LPAProgram(PregelProgram):
    def __init__(self, max_iters: int):
        self.max_iters = max_iters

    def initial_value(self, vid: int, graph: Graph) -> int:
        return vid

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[int]) -> None:
        if messages:
            counts: Dict[int, int] = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            best, best_count = v.value, 0
            for label in sorted(counts):
                if counts[label] > best_count:
                    best, best_count = label, counts[label]
            v.value = best
        if ctx.superstep < self.max_iters:
            ctx.send_to_neighbors(v, v.value)
        else:
            ctx.vote_to_halt()


def pregel_lpa(graph: Graph, num_workers: int = 4, max_iters: int = 10) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_LPAProgram(max_iters), label="lpa")
    return BaselineResult(
        "lpa", "pregel", values, fw.metrics, extra={"num_labels": len(set(values))}
    )


# ----------------------------------------------------------------------
# SCC — forward-backward coloring with a master-driven phase machine
# ----------------------------------------------------------------------
class _SCCProgram(PregelProgram):
    aggregators = {"changed": lambda a, b: a or b, "unassigned": lambda a, b: a + b}

    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [-1, vid]  # [scc, fid]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        scc, fid = v.value
        phase = ctx.aggregated("phase", "color_init")
        if phase == "done":
            ctx.vote_to_halt()
            return
        if scc != -1:
            # Assigned vertices idle but stay awake for the phase machine.
            return

        if phase == "color_init":
            v.value = [scc, v.id]
            for t in v.out_neighbors:
                ctx.send(t, ("fid", v.id))
            ctx.aggregate("changed", True)
        elif phase == "color":
            new_fid = min([m[1] for m in messages if m[0] == "fid"], default=fid)
            if new_fid < fid:
                v.value = [scc, new_fid]
                for t in v.out_neighbors:
                    ctx.send(t, ("fid", new_fid))
                ctx.aggregate("changed", True)
        elif phase == "claim_init":
            if fid == v.id:
                v.value = [v.id, fid]
                for t in v.in_neighbors:
                    ctx.send(t, ("claim", v.id))
                ctx.aggregate("changed", True)
            ctx.aggregate("unassigned", 0)
        elif phase == "claim":
            claimed = any(m[0] == "claim" and m[1] == fid for m in messages)
            if claimed:
                v.value = [fid, fid]
                for t in v.in_neighbors:
                    ctx.send(t, ("claim", fid))
                ctx.aggregate("changed", True)
            else:
                ctx.aggregate("unassigned", 1)

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        phase = ctx.aggregated("phase", "color_init")
        changed = aggregated.get("changed", False)
        if phase == "color_init":
            return {"phase": "color"}
        if phase == "color":
            return {"phase": "color" if changed else "claim_init"}
        if phase == "claim_init":
            return {"phase": "claim"}
        # claim phase: when stable, either finish or start a new round.
        if changed:
            return {"phase": "claim"}
        if aggregated.get("unassigned", 0) == 0:
            return {"phase": "done"}
        return {"phase": "color_init"}


def pregel_scc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    if not graph.directed:
        raise ValueError("scc needs a directed graph")
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_SCCProgram(), label="scc")
    return BaselineResult("scc", "pregel", [scc for scc, _ in values], fw.metrics)


# ----------------------------------------------------------------------
# MSF — Boruvka with master-side component merging
# ----------------------------------------------------------------------
class _MSFProgram(PregelProgram):
    aggregators = {
        "best": lambda a, b: {
            comp: min(filter(None, (a.get(comp), b.get(comp))))
            for comp in set(a) | set(b)
        }
    }

    def __init__(self, graph: Graph):
        self.chosen: List[Tuple[int, int, float]] = []
        self._dsu = DSU(graph.num_vertices)

    def initial_value(self, vid: int, graph: Graph) -> int:
        return vid  # component label

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        if ctx.aggregated("done", False):
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:
            remap = ctx.aggregated("remap", {})
            v.value = remap.get(v.value, v.value)
            ctx.send_to_neighbors(v, (v.id, v.value))
        elif phase == 1:
            best: Optional[Tuple[float, int, int, int]] = None
            for nid, ncomp in messages:
                if ncomp != v.value:
                    w = v._framework.graph.weight(v.id, nid)
                    cand = (w, min(v.id, nid), max(v.id, nid), ncomp)
                    if best is None or cand < best:
                        best = cand
            if best is not None:
                ctx.aggregate("best", {v.value: best})
        # phase 2 is the master merge; vertices idle.

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        if ctx.superstep % 3 != 1:
            return {k: ctx.aggregated(k) for k in ("remap", "done") if ctx.aggregated(k) is not None}
        best = aggregated.get("best", {})
        if not best:
            return {"done": True}
        merged = False
        for comp, (w, s, d, _) in sorted(best.items()):
            if self._dsu.union(s, d):
                merged = True
                self.chosen.append((s, d, w))
        if not merged:
            return {"done": True}
        remap = {v: self._dsu.find(v) for v in range(len(self._dsu))}
        return {"remap": remap}


def pregel_msf(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    program = _MSFProgram(graph)
    fw.run(program, label="msf")
    total = sum(w for _, _, w in program.chosen)
    return BaselineResult(
        "msf",
        "pregel",
        program.chosen,
        fw.metrics,
        extra={"total_weight": total, "num_edges": len(program.chosen)},
    )


# ----------------------------------------------------------------------
# BCC — a four-program chain (the paper: >3000 actual lines in Pregel+)
# ----------------------------------------------------------------------
class _BCCBfs(PregelProgram):
    """BFS forest from each component's minimum-id vertex.

    value = [dis, parent]; message = (sender_id, sender_dis).
    """

    def __init__(self, comp: List[int]):
        self.comp = comp

    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [0, -1] if self.comp[vid] == vid else [-1, -1]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        dis, parent = v.value
        if ctx.superstep == 0:
            if dis == 0:
                ctx.send_to_neighbors(v, (v.id, 0))
        elif dis == -1 and messages:
            best = min(messages, key=lambda m: m[0])
            v.value = [best[1] + 1, best[0]]
            ctx.send_to_neighbors(v, (v.id, best[1] + 1))
        ctx.vote_to_halt()


class _BCCTokenWalk(PregelProgram):
    """Spawn a token per non-tree edge at both endpoints and walk the
    copies up the BFS tree, one depth level per superstep (deepest
    first).  A vertex whose parent-edge a token traverses records the
    token id; the two copies annihilate at their meeting vertex.

    value = dict(held={tid: count}, T=frozenset of recorded tids).
    Supersteps 0-1 exchange (id, parent, dis); superstep 2+k moves the
    walkers sitting at depth ``max_dis - k``.
    """

    def __init__(self, dis: List[int], parent: List[int], max_dis: int):
        self.dis = dis
        self.parent = parent
        self.max_dis = max_dis

    def initial_value(self, vid: int, graph: Graph) -> Dict[str, Any]:
        return {"held": {}, "T": frozenset()}

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        value = v.value
        my_dis = self.dis[v.id]
        my_parent = self.parent[v.id]
        if my_dis == -1:
            ctx.vote_to_halt()
            return

        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, ("info", v.id, my_parent))
            return
        if ctx.superstep == 1:
            held: Dict[Tuple[int, int], int] = {}
            for _, nid, nparent in messages:
                if nid == my_parent or nparent == v.id or nid == v.id:
                    continue  # tree edge or self loop
                tid = (min(v.id, nid), max(v.id, nid))
                held[tid] = held.get(tid, 0) + 1
            v.value = {"held": held, "T": frozenset()}
            return

        # Walking supersteps: current depth counts down from max_dis.
        depth = self.max_dis - (ctx.superstep - 2)
        held = dict(value["held"])
        recorded = set(value["T"])
        for m in messages:
            if m[0] == "tok":
                for tid in m[1]:
                    held[tid] = held.get(tid, 0) + 1
        if depth >= 0 and my_dis == depth and held:
            moving = [tid for tid, count in held.items() if count == 1]
            # count >= 2 means both copies met here: they annihilate.
            if moving and my_parent != -1:
                recorded.update(moving)
                ctx.send(my_parent, ("tok", tuple(moving)))
            held = {}
        v.value = {"held": held, "T": frozenset(recorded)}
        if depth <= 0:
            ctx.vote_to_halt()


class _BCCLabel(PregelProgram):
    """Min-label propagation over token-sharing tree edges.

    The label of vertex v stands for the tree edge (parent(v), v).  Tree
    edges meet at their shared vertex: every child sends
    ``("up", id, label, T)`` to its parent, which locally groups the
    incoming edges (plus its own parent edge) by token intersection and
    replies ``("set", min_label)`` -- covering both parent/child *and*
    sibling adjacency, which pure neighbor gossip would miss.
    """

    aggregators = {"changed": lambda a, b: a or b}

    def __init__(self, parent: List[int], tokens: List[frozenset]):
        self.parent = parent
        self.tokens = tokens

    def initial_value(self, vid: int, graph: Graph) -> int:
        return vid

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        if ctx.aggregated("quiet_rounds", 0) >= 3:
            ctx.vote_to_halt()
            return
        label = v.value
        mine = self.tokens[v.id]
        changed = False
        for m in messages:
            if m[0] == "set" and m[1] < label:
                label = m[1]
                changed = True

        ups = [(m[1], m[2], m[3]) for m in messages if m[0] == "up"]
        if ups:
            items = list(ups)
            if self.parent[v.id] != -1 and mine:
                items.append((v.id, label, mine))
            group = list(range(len(items)))

            def find(i: int) -> int:
                while group[i] != i:
                    group[i] = group[group[i]]
                    i = group[i]
                return i

            for i in range(len(items)):
                for j in range(i + 1, len(items)):
                    if items[i][2] & items[j][2]:
                        ri, rj = find(i), find(j)
                        if ri != rj:
                            group[rj] = ri
            best: Dict[int, int] = {}
            for i, (_, lbl, _) in enumerate(items):
                r = find(i)
                best[r] = min(best.get(r, lbl), lbl)
            for i, (cid, lbl, _) in enumerate(items):
                gmin = best[find(i)]
                if gmin < lbl:
                    if cid == v.id:
                        label = gmin
                        changed = True
                    else:
                        ctx.send(cid, ("set", gmin))

        if changed:
            v.value = label
            ctx.aggregate("changed", True)
        if self.parent[v.id] != -1 and mine:
            ctx.send(self.parent[v.id], ("up", v.id, label, mine))

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        quiet = ctx.aggregated("quiet_rounds", 0)
        if ctx.superstep > 0 and not aggregated.get("changed", False):
            quiet += 1
        else:
            quiet = 0
        return {"quiet_rounds": quiet}


def pregel_bcc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    comp = fw.run(_CCProgram(), label="bcc:cc")
    fw.chain_cost("bcc:chain1")
    bfs_values = fw.run(_BCCBfs(comp), label="bcc:bfs")
    dis = [d for d, _ in bfs_values]
    parent = [p for _, p in bfs_values]
    max_dis = max((d for d in dis if d >= 0), default=0)
    fw.chain_cost("bcc:chain2")
    walk_values = fw.run(
        _BCCTokenWalk(dis, parent, max_dis),
        max_supersteps=max_dis + 10,
        label="bcc:walk",
    )
    tokens = [v["T"] for v in walk_values]
    fw.chain_cost("bcc:chain3")
    labels = fw.run(_BCCLabel(parent, tokens), label="bcc:label")

    edge_groups: Dict[Tuple[int, int], int] = {}
    for s, d in graph.edges():
        if s == d:
            continue
        if parent[d] == s:
            edge_groups[(s, d)] = labels[d]
        elif parent[s] == d:
            edge_groups[(s, d)] = labels[s]
        else:
            deeper = s if dis[s] >= dis[d] else d
            edge_groups[(s, d)] = labels[deeper]
    return BaselineResult(
        "bcc", "pregel", labels, fw.metrics, extra={"edge_groups": edge_groups}
    )


# ----------------------------------------------------------------------
# Inexpressible applications (Table I / Table VI: no baseline exists)
# ----------------------------------------------------------------------
def pregel_rc(graph: Graph, num_workers: int = 4) -> BaselineResult:
    raise InexpressibleError(
        "rectangle counting needs two-hop (beyond-neighborhood) pairs; the "
        "Pregel model only communicates along edges"
    )


def pregel_cl(graph: Graph, num_workers: int = 4) -> BaselineResult:
    raise InexpressibleError(
        "k-clique counting needs arbitrary-vertex neighbor-set reads; the "
        "Pregel model cannot access remote state outside messages"
    )


# ----------------------------------------------------------------------
# CC-opt — hook-and-jump in Pregel (Table I's half circle: expressible,
# but every pointer jump needs a request/response message round trip and
# the phases must be chained by a driver)
# ----------------------------------------------------------------------
class _CCOptJumpProgram(PregelProgram):
    """Pointer jumping on a parent forest: each superstep every vertex
    answers its children's requests with its current parent and asks its
    own parent in turn; adoption happens when the response arrives (a
    two-superstep pipeline — the performance cost the paper's half
    circle denotes)."""

    aggregators = {"changed": lambda a, b: a or b}

    def __init__(self, parents: List[int]):
        self.parents = parents

    def initial_value(self, vid: int, graph: Graph) -> int:
        return self.parents[vid]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        quiet = ctx.aggregated("quiet", 0)
        if quiet >= 3:
            ctx.vote_to_halt()
            return
        for m in messages:
            if m[0] == "ask":
                ctx.send(m[1], ("jump", v.value))
        jumps = [m[1] for m in messages if m[0] == "jump"]
        if jumps and min(jumps) != v.value:
            v.value = min(jumps)
            ctx.aggregate("changed", True)
        if v.value != v.id:
            ctx.send(v.value, ("ask", v.id))

    def master_compute(self, ctx: PregelContext, aggregated: Dict[str, Any]) -> Dict[str, Any]:
        quiet = ctx.aggregated("quiet", 0)
        if ctx.superstep > 0 and not aggregated.get("changed"):
            quiet += 1
        else:
            quiet = 0
        return {"quiet": quiet}


class _CCOptHookOnce(PregelProgram):
    """One hooking pass over a *flattened* forest: neighbors exchange
    root labels and every root adopts the smallest label offered to its
    tree (three supersteps)."""

    def __init__(self, parents: List[int]):
        self.parents = parents

    def initial_value(self, vid: int, graph: Graph) -> int:
        return self.parents[vid]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, ("offer", v.value))
        elif ctx.superstep == 1:
            offers = [m[1] for m in messages if m[0] == "offer"]
            if offers and min(offers) < v.value:
                ctx.send(v.value, ("hook", min(offers)))
        else:
            hooks = [m[1] for m in messages if m[0] == "hook"]
            if hooks and v.value == v.id and min(hooks) < v.value:
                v.value = min(hooks)
        ctx.vote_to_halt()


def pregel_cc_opt(graph: Graph, num_workers: int = 4) -> BaselineResult:
    """Hook-and-jump connected components as a chained Pregel pipeline:
    flatten (jump program, request/response round trips) then hook once,
    repeating until a hook pass changes nothing."""
    fw = PregelFramework(graph, num_workers)
    parents = list(range(graph.num_vertices))
    while True:
        hooked = fw.run(_CCOptHookOnce(parents), label="cc_opt:hook")
        if hooked == parents:
            return BaselineResult("cc_opt", "pregel", parents, fw.metrics)
        fw.chain_cost("cc_opt:chain")
        parents = fw.run(_CCOptJumpProgram(hooked), label="cc_opt:jump")
        fw.chain_cost("cc_opt:chain")


# ----------------------------------------------------------------------
# MM-opt — targeted-reactivation matching in Pregel (Table I half circle)
# ----------------------------------------------------------------------
class _MMOptProgram(PregelProgram):
    """The optimized matching, Pregel-style: after each handshake round,
    newly matched vertices notify exactly the unmatched vertices whose
    recorded best proposer they were (targeted messages, no edge set
    abstraction) so only those recompute.

    value = [partner, best proposer, awaiting(0/1)].
    """

    def initial_value(self, vid: int, graph: Graph) -> List[int]:
        return [-1, -1, 1]

    def compute(self, ctx: PregelContext, v: PregelVertex, messages: List[Any]) -> None:
        partner, best, awaiting = v.value
        if partner != -1:
            # Matched: answer any late reactivation pings, then sleep.
            for m in messages:
                if m[0] == "chosen":
                    ctx.send(m[1], ("taken", v.id))
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:
            reactivate = any(m[0] == "taken" for m in messages)
            if awaiting or reactivate or ctx.superstep == 0:
                ctx.send_to_neighbors(v, ("prop", v.id))
                v.value = [partner, -1, 0]
            else:
                ctx.vote_to_halt()
        elif phase == 1:
            proposers = [m[1] for m in messages if m[0] == "prop"]
            if not proposers:
                ctx.vote_to_halt()
                return
            best = max(proposers)
            v.value = [partner, best, 0]
            ctx.send(best, ("chosen", v.id))
        else:
            choosers = {m[1] for m in messages if m[0] == "chosen"}
            if best in choosers:
                v.value = [best, best, 0]
                # Tell everyone who chose us (and lost) to recompute.
                for loser in choosers - {best}:
                    ctx.send(loser, ("taken", v.id))
            else:
                v.value = [partner, best, 1]


def pregel_mm_opt(graph: Graph, num_workers: int = 4) -> BaselineResult:
    fw = PregelFramework(graph, num_workers)
    values = fw.run(_MMOptProgram(), label="mm_opt")
    partners = [p for p, _, _ in values]
    pairs = [(v, p) for v, p in enumerate(partners) if p != -1 and v < p]
    return BaselineResult("mm_opt", "pregel", partners, fw.metrics, extra={"matching": pairs})
