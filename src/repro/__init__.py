"""repro — a from-scratch reproduction of

    FLASH: A Framework for Programming Distributed Graph Processing
    Algorithms (Li et al., ICDE 2023)

The package provides the FLASH programming model
(:class:`~repro.core.engine.FlashEngine` with ``vertex_map`` /
``edge_map`` over :class:`~repro.core.subset.VertexSubset`), the
FLASHWARE simulated-distributed middleware, the paper's 14 evaluation
applications (plus optimized variants) in :mod:`repro.algorithms`, and
from-scratch implementations of the four baseline frameworks (Pregel+,
PowerGraph/GAS, Gemini, Ligra) in :mod:`repro.baselines`.

Quickstart::

    from repro import FlashEngine, load_dataset
    from repro.algorithms import bfs

    graph = load_dataset("OR", scale=0.2)
    result = bfs(graph, root=0, num_workers=4)
    print(result.values[:10], result.engine.metrics.summary())
"""

from repro.core import (
    CTRUE,
    DSU,
    FlashEngine,
    VertexSubset,
    bind,
    ctrue,
    edges_from,
    join,
    reverse,
)
from repro.errors import FlashUsageError, InexpressibleError, ReproError
from repro.graph import (
    Graph,
    load_dataset,
    random_graph,
    road_network,
    social_network,
    web_graph,
)
from repro.runtime import ClusterSpec, CostModel, FlashwareOptions

__version__ = "0.1.0"

__all__ = [
    "CTRUE",
    "ClusterSpec",
    "CostModel",
    "DSU",
    "FlashEngine",
    "FlashUsageError",
    "FlashwareOptions",
    "Graph",
    "InexpressibleError",
    "ReproError",
    "VertexSubset",
    "bind",
    "ctrue",
    "edges_from",
    "join",
    "load_dataset",
    "random_graph",
    "reverse",
    "road_network",
    "social_network",
    "web_graph",
]
