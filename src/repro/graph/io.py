"""Edge-list I/O.

The paper's datasets ship as whitespace-separated edge lists; we support
the same format (with optional weights and ``#`` comments) so users can
load their own graphs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.graph.graph import Graph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, directed: bool = False, weighted: bool = False) -> Graph:
    """Read a graph from a whitespace-separated edge-list file.

    Lines are ``src dst`` or ``src dst weight``; blank lines and lines
    starting with ``#`` or ``%`` are skipped.
    """
    edges: List[Tuple[int, int]] = []
    weights: Optional[List[float]] = [] if weighted else None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least 2 fields, got {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
            if weights is not None:
                weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    return Graph.from_edges(edges, directed=directed, weights=weights)


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a graph as a whitespace-separated edge list (with weights when
    the graph is weighted)."""
    with open(path, "w") as f:
        f.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges} directed={graph.directed}\n")
        if graph.weighted:
            for s, d, w in graph.weighted_edges():
                f.write(f"{s} {d} {w}\n")
        else:
            for s, d in graph.edges():
                f.write(f"{s} {d}\n")


def read_adjacency_list(path: PathLike, directed: bool = False) -> Graph:
    """Read a graph from an adjacency-list file.

    Each non-comment line is ``vertex nbr1 nbr2 ...``; vertices with no
    neighbors may appear alone on a line.  For undirected graphs each
    edge may appear on either (or both) endpoint's line — duplicates are
    collapsed.
    """
    edges: List[Tuple[int, int]] = []
    seen = set()
    max_vid = -1
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            fields = [int(x) for x in line.split()]
            v = fields[0]
            max_vid = max(max_vid, v, *fields[1:]) if len(fields) > 1 else max(max_vid, v)
            for u in fields[1:]:
                key = (v, u) if directed else (min(v, u), max(v, u))
                if key in seen:
                    continue
                seen.add(key)
                edges.append((v, u))
    return Graph.from_edges(edges, directed=directed, num_vertices=max_vid + 1)


def write_adjacency_list(graph: Graph, path: PathLike) -> None:
    """Write a graph as an adjacency-list file (out-neighbors per line;
    undirected edges emitted from the smaller endpoint only)."""
    with open(path, "w") as f:
        f.write(f"# |V|={graph.num_vertices} directed={graph.directed}\n")
        for v in graph.vertices():
            if graph.directed:
                nbrs = [int(u) for u in graph.out_neighbors(v)]
            else:
                nbrs = [int(u) for u in graph.out_neighbors(v) if int(u) >= v]
            f.write(" ".join(str(x) for x in [v] + nbrs) + "\n")


def read_metis(path: PathLike) -> Graph:
    """Read a graph in (unweighted) METIS format: a header line
    ``num_vertices num_edges`` followed by one line of 1-based neighbor
    ids per vertex."""
    with open(path) as f:
        lines = [ln.strip() for ln in f if ln.strip() and not ln.startswith("%")]
    if not lines:
        raise ValueError(f"{path}: empty METIS file")
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    if len(lines) - 1 != n:
        raise ValueError(f"{path}: expected {n} adjacency lines, found {len(lines) - 1}")
    edges: List[Tuple[int, int]] = []
    for v, line in enumerate(lines[1:]):
        for token in line.split():
            u = int(token) - 1  # METIS ids are 1-based
            if not 0 <= u < n:
                raise ValueError(f"{path}: neighbor id {token} out of range")
            if v < u:
                edges.append((v, u))
    if len(edges) != m:
        raise ValueError(f"{path}: header claims {m} edges, found {len(edges)}")
    return Graph(n, edges, directed=False)


def write_metis(graph: Graph, path: PathLike) -> None:
    """Write an undirected graph in METIS format."""
    if graph.directed:
        raise ValueError("METIS format describes undirected graphs")
    with open(path, "w") as f:
        f.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in graph.vertices():
            f.write(" ".join(str(int(u) + 1) for u in graph.out_neighbors(v)) + "\n")
