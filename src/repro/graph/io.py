"""Edge-list I/O and binary graph persistence.

The paper's datasets ship as whitespace-separated edge lists; we support
the same format (with optional weights and ``#`` comments) so users can
load their own graphs.  :func:`save_graph` / :func:`load_graph` add a
binary ``.npz`` round-trip (edge arrays plus the out-CSR adjacency,
format-versioned and checksummed) for graphs too large to re-parse from
text.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.graph.graph import Graph

PathLike = Union[str, Path]

#: Bump when the binary on-disk layout changes incompatibly.
GRAPH_FORMAT_VERSION = 1

_MAGIC = "repro-graph"


def read_edge_list(path: PathLike, directed: bool = False, weighted: bool = False) -> Graph:
    """Read a graph from a whitespace-separated edge-list file.

    Lines are ``src dst`` or ``src dst weight``; blank lines and lines
    starting with ``#`` or ``%`` are skipped.
    """
    edges: List[Tuple[int, int]] = []
    weights: Optional[List[float]] = [] if weighted else None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least 2 fields, got {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
            if weights is not None:
                weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    return Graph.from_edges(edges, directed=directed, weights=weights)


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a graph as a whitespace-separated edge list (with weights when
    the graph is weighted)."""
    with open(path, "w") as f:
        f.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges} directed={graph.directed}\n")
        if graph.weighted:
            for s, d, w in graph.weighted_edges():
                f.write(f"{s} {d} {w}\n")
        else:
            for s, d in graph.edges():
                f.write(f"{s} {d}\n")


def read_adjacency_list(path: PathLike, directed: bool = False) -> Graph:
    """Read a graph from an adjacency-list file.

    Each non-comment line is ``vertex nbr1 nbr2 ...``; vertices with no
    neighbors may appear alone on a line.  For undirected graphs each
    edge may appear on either (or both) endpoint's line — duplicates are
    collapsed.
    """
    edges: List[Tuple[int, int]] = []
    seen = set()
    max_vid = -1
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            fields = [int(x) for x in line.split()]
            v = fields[0]
            max_vid = max(max_vid, v, *fields[1:]) if len(fields) > 1 else max(max_vid, v)
            for u in fields[1:]:
                key = (v, u) if directed else (min(v, u), max(v, u))
                if key in seen:
                    continue
                seen.add(key)
                edges.append((v, u))
    return Graph.from_edges(edges, directed=directed, num_vertices=max_vid + 1)


def write_adjacency_list(graph: Graph, path: PathLike) -> None:
    """Write a graph as an adjacency-list file (out-neighbors per line;
    undirected edges emitted from the smaller endpoint only)."""
    with open(path, "w") as f:
        f.write(f"# |V|={graph.num_vertices} directed={graph.directed}\n")
        for v in graph.vertices():
            if graph.directed:
                nbrs = [int(u) for u in graph.out_neighbors(v)]
            else:
                nbrs = [int(u) for u in graph.out_neighbors(v) if int(u) >= v]
            f.write(" ".join(str(x) for x in [v] + nbrs) + "\n")


def read_metis(path: PathLike) -> Graph:
    """Read a graph in (unweighted) METIS format: a header line
    ``num_vertices num_edges`` followed by one line of 1-based neighbor
    ids per vertex."""
    with open(path) as f:
        lines = [ln.strip() for ln in f if ln.strip() and not ln.startswith("%")]
    if not lines:
        raise ValueError(f"{path}: empty METIS file")
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    if len(lines) - 1 != n:
        raise ValueError(f"{path}: expected {n} adjacency lines, found {len(lines) - 1}")
    edges: List[Tuple[int, int]] = []
    for v, line in enumerate(lines[1:]):
        for token in line.split():
            u = int(token) - 1  # METIS ids are 1-based
            if not 0 <= u < n:
                raise ValueError(f"{path}: neighbor id {token} out of range")
            if v < u:
                edges.append((v, u))
    if len(edges) != m:
        raise ValueError(f"{path}: header claims {m} edges, found {len(edges)}")
    return Graph(n, edges, directed=False)


def write_metis(graph: Graph, path: PathLike) -> None:
    """Write an undirected graph in METIS format."""
    if graph.directed:
        raise ValueError("METIS format describes undirected graphs")
    with open(path, "w") as f:
        f.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in graph.vertices():
            f.write(" ".join(str(int(u) + 1) for u in graph.out_neighbors(v)) + "\n")


# ----------------------------------------------------------------------
# Binary persistence (.npz with format version + checksum)
# ----------------------------------------------------------------------

def _npz_checksum(arrays: Dict[str, np.ndarray]) -> int:
    """CRC32 over every payload array (keys in sorted order, so the
    digest is independent of insertion order)."""
    crc = 0
    for key in sorted(arrays):
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(arrays[key]).tobytes(), crc)
    return crc


def save_graph(graph: Graph, path: PathLike) -> str:
    """Write ``graph`` to ``path`` as an uncompressed ``.npz``.

    The file holds the logical edge list (the source of truth the
    :class:`Graph` constructor consumes) *and* the out-CSR adjacency
    arrays, so the loader can cross-check that the deterministic CSR
    rebuild matches what was saved.  Returns the path written (``.npz``
    is appended when missing, matching :func:`numpy.savez`)."""
    edges = graph.edges()
    src = np.fromiter((s for s, _ in edges), dtype=np.int64, count=len(edges))
    dst = np.fromiter((d for _, d in edges), dtype=np.int64, count=len(edges))
    out = graph.out_csr
    payload: Dict[str, np.ndarray] = {
        "src": src,
        "dst": dst,
        "out_indptr": np.asarray(out.indptr, dtype=np.int64),
        "out_indices": np.asarray(out.indices, dtype=np.int64),
        "out_arc_ids": np.asarray(out.arc_ids, dtype=np.int64),
    }
    if graph.weighted:
        payload["weights"] = graph.arc_weights(np.arange(len(edges), dtype=np.int64))
    header = np.array(
        [GRAPH_FORMAT_VERSION, graph.num_vertices, len(edges), int(graph.directed)],
        dtype=np.int64,
    )
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez(
        path,
        magic=np.frombuffer(_MAGIC.encode("utf-8"), dtype=np.uint8),
        header=header,
        checksum=np.array([_npz_checksum(payload)], dtype=np.int64),
        **payload,
    )
    return path


def load_graph(path: PathLike) -> Graph:
    """Load a graph written by :func:`save_graph`.

    Raises :class:`ValueError` on a wrong magic, an unsupported format
    version, a checksum mismatch, or when the CSR rebuilt from the edge
    list disagrees with the stored CSR arrays."""
    with np.load(os.fspath(path)) as data:
        files = set(data.files)
        if "magic" not in files or bytes(data["magic"]).decode("utf-8", "replace") != _MAGIC:
            raise ValueError(f"{path}: not a repro graph file")
        version, num_vertices, num_edges, directed = (int(x) for x in data["header"])
        if version != GRAPH_FORMAT_VERSION:
            raise ValueError(
                f"{path}: format version {version} is not supported "
                f"(expected {GRAPH_FORMAT_VERSION})"
            )
        payload = {
            key: data[key]
            for key in files
            if key not in ("magic", "header", "checksum")
        }
        stored = int(data["checksum"][0])
        actual = _npz_checksum(payload)
        if stored != actual:
            raise ValueError(
                f"{path}: checksum mismatch (stored {stored}, computed "
                f"{actual}) — file corrupted or truncated"
            )
    src, dst = payload["src"], payload["dst"]
    if len(src) != num_edges or len(dst) != num_edges:
        raise ValueError(f"{path}: edge arrays disagree with header edge count")
    graph = Graph(
        num_vertices,
        zip(src.tolist(), dst.tolist()),
        directed=bool(directed),
        weights=payload.get("weights"),
    )
    out = graph.out_csr
    if not (
        np.array_equal(out.indptr, payload["out_indptr"])
        and np.array_equal(out.indices, payload["out_indices"])
        and np.array_equal(out.arc_ids, payload["out_arc_ids"])
    ):
        raise ValueError(
            f"{path}: stored CSR disagrees with the adjacency rebuilt from "
            "the edge list — file corrupted or written by an incompatible "
            "implementation"
        )
    return graph
