"""Deterministic synthetic graph generators.

The paper evaluates on six real-world graphs (Table III): two social
networks (soc-orkut, soc-twitter), two road networks (road-USA,
europe-osm) and two web graphs (uk-2002, sk-2005).  Those datasets are
billions of edges and are not available offline, so we generate
scaled-down analogues that preserve the *structural traits the paper's
results depend on*:

* social networks — heavily skewed (power-law) degrees, tiny diameter;
* road networks — nearly uniform low degree, enormous diameter;
* web graphs — power-law degrees with local clustering, mid diameter.

Every generator is a pure function of its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.graph.graph import Graph

EdgeList = List[Tuple[int, int]]


def _dedupe(edges: EdgeList) -> EdgeList:
    """Drop duplicate undirected edges and self loops, keeping order."""
    seen = set()
    out = []
    for s, d in edges:
        if s == d:
            continue
        key = (min(s, d), max(s, d))
        if key in seen:
            continue
        seen.add(key)
        out.append((s, d))
    return out


def social_network(num_vertices: int, avg_degree: int = 16, seed: int = 0) -> Graph:
    """A preferential-attachment graph mimicking soc-orkut / soc-twitter.

    New vertices attach ``avg_degree // 2`` edges to existing vertices
    chosen proportionally to degree, producing a skewed degree
    distribution with a few "hot" vertices and a small diameter
    (paper §V-A's characterisation of social networks).
    """
    if num_vertices < 2:
        raise ValueError("social_network needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    m = max(1, avg_degree // 2)
    edges: EdgeList = []
    # Repeated-endpoint list implements preferential attachment cheaply.
    targets: List[int] = [0]
    for v in range(1, num_vertices):
        k = min(m, v)
        picks = set()
        while len(picks) < k:
            picks.add(int(targets[rng.integers(0, len(targets))]))
        for t in picks:
            edges.append((v, t))
            targets.append(t)
        targets.extend([v] * k)
    return Graph.from_edges(_dedupe(edges), directed=False, num_vertices=num_vertices)


def road_network(width: int, height: int, seed: int = 0, drop_fraction: float = 0.05) -> Graph:
    """A perturbed grid mimicking road-USA / europe-osm.

    Vertices form a ``width x height`` lattice with 4-neighbor links;
    ``drop_fraction`` of the edges are removed at random (keeping the
    giant component overwhelmingly dominant), giving degree ≈ 4 and a
    diameter on the order of ``width + height``.
    """
    if width < 2 or height < 2:
        raise ValueError("road_network needs a grid of at least 2x2")
    rng = np.random.default_rng(seed)
    num_vertices = width * height

    def vid(x: int, y: int) -> int:
        return y * width + x

    edges: EdgeList = []
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                edges.append((vid(x, y), vid(x + 1, y)))
            if y + 1 < height:
                edges.append((vid(x, y), vid(x, y + 1)))
    keep = rng.random(len(edges)) >= drop_fraction
    kept = [e for e, k in zip(edges, keep) if k]
    return Graph.from_edges(kept, directed=False, num_vertices=num_vertices)


def web_graph(num_vertices: int, out_degree: int = 8, copy_prob: float = 0.6, seed: int = 0) -> Graph:
    """A copying-model graph mimicking uk-2002 / sk-2005.

    Each new page links to ``out_degree`` targets; with probability
    ``copy_prob`` a link is copied from a random earlier page's links
    (creating hubs and clustering), otherwise it points to a uniformly
    random earlier page.  Degree skew is power-law-ish; the diameter sits
    between the social and road regimes.
    """
    if num_vertices < 2:
        raise ValueError("web_graph needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    adj: List[List[int]] = [[] for _ in range(num_vertices)]
    edges: EdgeList = []
    for v in range(1, num_vertices):
        k = min(out_degree, v)
        chosen = set()
        for _ in range(k):
            proto = int(rng.integers(0, v))
            if adj[proto] and rng.random() < copy_prob:
                t = int(adj[proto][rng.integers(0, len(adj[proto]))])
            else:
                t = proto
            chosen.add(t)
        for t in chosen:
            if t != v:
                edges.append((v, t))
                adj[v].append(t)
    return Graph.from_edges(_dedupe(edges), directed=False, num_vertices=num_vertices)


def random_graph(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """A uniform (Erdős–Rényi style) random graph, mainly for tests."""
    rng = np.random.default_rng(seed)
    edges: EdgeList = []
    seen = set()
    attempts = 0
    max_possible = num_vertices * (num_vertices - 1) // 2
    target = min(num_edges, max_possible)
    while len(edges) < target and attempts < 50 * num_edges + 100:
        attempts += 1
        s = int(rng.integers(0, num_vertices))
        d = int(rng.integers(0, num_vertices))
        if s == d:
            continue
        key = (min(s, d), max(s, d))
        if key in seen:
            continue
        seen.add(key)
        edges.append((s, d))
    return Graph.from_edges(edges, directed=False, num_vertices=num_vertices)


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for a named scaled-down analogue of a paper dataset."""

    name: str
    paper_name: str
    domain: str  # "SN" | "RN" | "WG"
    factory: Callable[[float, int], Graph]
    description: str


def _or_factory(scale: float, seed: int) -> Graph:
    return social_network(max(64, int(1500 * scale)), avg_degree=24, seed=seed)


def _tw_factory(scale: float, seed: int) -> Graph:
    return social_network(max(64, int(5000 * scale)), avg_degree=20, seed=seed + 1)


def _us_factory(scale: float, seed: int) -> Graph:
    side = max(8, int(55 * np.sqrt(scale)))
    return road_network(side, side, seed=seed + 2)


def _eu_factory(scale: float, seed: int) -> Graph:
    side = max(8, int(80 * np.sqrt(scale)))
    return road_network(side, side, seed=seed + 3)


def _uk_factory(scale: float, seed: int) -> Graph:
    return web_graph(max(64, int(2500 * scale)), out_degree=10, seed=seed + 4)


def _sk_factory(scale: float, seed: int) -> Graph:
    return web_graph(max(64, int(6000 * scale)), out_degree=12, seed=seed + 5)


DATASETS: Dict[str, DatasetSpec] = {
    "OR": DatasetSpec("OR", "soc-orkut", "SN", _or_factory, "social network, skewed degrees, tiny diameter"),
    "TW": DatasetSpec("TW", "soc-twitter", "SN", _tw_factory, "larger social network"),
    "US": DatasetSpec("US", "road-USA", "RN", _us_factory, "road grid, degree ~4, huge diameter"),
    "EU": DatasetSpec("EU", "europe-osm", "RN", _eu_factory, "larger road grid"),
    "UK": DatasetSpec("UK", "uk-2002", "WG", _uk_factory, "web graph, hubs + clustering"),
    "SK": DatasetSpec("SK", "sk-2005", "WG", _sk_factory, "larger web graph"),
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 7, directed: bool = False) -> Graph:
    """Build the scaled-down analogue of a paper dataset by abbreviation.

    Parameters
    ----------
    name:
        One of ``OR, TW, US, EU, UK, SK`` (Table III abbreviations).
    scale:
        Relative size multiplier; 1.0 is the default benchmark size.
    seed:
        Generator seed (datasets are pure functions of ``(scale, seed)``).
    directed:
        When True, orient each undirected edge at random and add a
        reciprocal arc for 30% of them — the directed variant used by SCC.
    """
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    g = spec.factory(scale, seed)
    if not directed:
        return g
    rng = np.random.default_rng(seed + 1000)
    arcs: EdgeList = []
    for s, d in g.edges():
        if rng.random() < 0.5:
            s, d = d, s
        arcs.append((s, d))
        if rng.random() < 0.3:
            arcs.append((d, s))
    return Graph.from_edges(arcs, directed=True, num_vertices=g.num_vertices)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """An R-MAT (Kronecker) graph — the Graph500-style generator widely
    used by graph-processing benchmarks.

    ``2**scale`` vertices and about ``edge_factor * 2**scale`` undirected
    edges, recursively placed into quadrants with probabilities
    ``(a, b, c, 1-a-b-c)``.  Duplicates and self-loops are dropped, so the
    final count is slightly below the nominal one.
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    if min(a, b, c) < 0 or a + b + c >= 1:
        raise ValueError("quadrant probabilities must be non-negative and sum below 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    target = edge_factor * n
    edges: EdgeList = []
    for _ in range(target):
        s = d = 0
        for _ in range(scale):
            r = rng.random()
            s <<= 1
            d <<= 1
            if r < a:
                pass
            elif r < a + b:
                d |= 1
            elif r < a + b + c:
                s |= 1
            else:
                s |= 1
                d |= 1
        edges.append((s, d))
    return Graph.from_edges(_dedupe(edges), directed=False, num_vertices=n)


def bipartite_graph(
    left: int,
    right: int,
    avg_degree: int = 4,
    seed: int = 0,
) -> Graph:
    """A random bipartite graph: ``left`` vertices (ids 0..left-1) each
    linking to ~``avg_degree`` uniformly random right-side vertices
    (ids left..left+right-1)."""
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one vertex")
    rng = np.random.default_rng(seed)
    edges: EdgeList = []
    for u in range(left):
        k = min(avg_degree, right)
        targets = rng.choice(right, size=k, replace=False)
        edges.extend((u, left + int(t)) for t in targets)
    return Graph.from_edges(_dedupe(edges), directed=False, num_vertices=left + right)


def complete_graph(n: int) -> Graph:
    """K_n."""
    if n < 1:
        raise ValueError("n must be positive")
    return Graph.from_edges(
        [(a, b) for a in range(n) for b in range(a + 1, n)],
        directed=False,
        num_vertices=n,
    )


def star_graph(leaves: int) -> Graph:
    """A star: hub 0 with ``leaves`` spokes."""
    if leaves < 1:
        raise ValueError("need at least one leaf")
    return Graph.from_edges([(0, i) for i in range(1, leaves + 1)])
