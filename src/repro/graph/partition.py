"""Edge-cut partitioning with master/mirror bookkeeping.

Per the paper (§II, §IV-A): the graph is split into ``m`` disjoint vertex
sets, one per worker.  A vertex is a *master* on the worker that owns it;
every other worker that holds at least one of its neighbors gets a
*mirror* replica used for update propagation ("communicate with necessary
mirrors only", §IV-C).  The simulated runtime charges network messages
according to this map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.graph.graph import Graph


class PartitionMap:
    """Ownership and replication layout of a graph over ``m`` workers."""

    def __init__(self, graph: Graph, owner: np.ndarray, num_partitions: int):
        if len(owner) != graph.num_vertices:
            raise ValueError("owner array must have one entry per vertex")
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if len(owner) and (owner.min() < 0 or owner.max() >= num_partitions):
            raise ValueError("owner ids out of range")
        self._graph = graph
        self._owner = np.asarray(owner, dtype=np.int64)
        self._num_partitions = num_partitions
        self._members: List[np.ndarray] = [
            np.nonzero(self._owner == p)[0] for p in range(num_partitions)
        ]
        self._neighbor_mirrors: List[FrozenSet[int]] = self._compute_neighbor_mirrors()
        self._neighbor_mirror_counts: np.ndarray = np.fromiter(
            (len(m) for m in self._neighbor_mirrors),
            dtype=np.int64,
            count=graph.num_vertices,
        )

    def _compute_neighbor_mirrors(self) -> List[FrozenSet[int]]:
        """For each vertex, the partitions (other than its owner) holding at
        least one in- or out-neighbor — the *necessary mirrors*."""
        g = self._graph
        hook = getattr(g, "neighbor_partition_mask", None)
        if hook is not None:
            # Bulk path for graphs with expensive per-vertex adjacency
            # (block-paged out-of-core graphs): one streaming pass yields
            # an (n, P) neighbor-partition mask.
            mask = np.asarray(hook(self._owner, self._num_partitions), dtype=bool)
            if g.num_vertices:
                mask[np.arange(g.num_vertices), self._owner] = False
            return [frozenset(np.flatnonzero(row).tolist()) for row in mask]
        result: List[FrozenSet[int]] = []
        for v in range(g.num_vertices):
            parts = set(self._owner[g.out_neighbors(v)].tolist())
            if g.directed:
                parts.update(self._owner[g.in_neighbors(v)].tolist())
            parts.discard(int(self._owner[v]))
            result.append(frozenset(parts))
        return result

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def owner_of(self, v: int) -> int:
        """Partition id of the master of vertex ``v``."""
        return int(self._owner[v])

    def owners(self) -> np.ndarray:
        """Owner partition id per vertex (read-only view)."""
        return self._owner

    def members(self, p: int) -> np.ndarray:
        """Vertex ids mastered by partition ``p``."""
        return self._members[p]

    def is_master(self, v: int, p: int) -> bool:
        return int(self._owner[v]) == p

    def neighbor_mirrors(self, v: int) -> FrozenSet[int]:
        """Partitions holding a *necessary* mirror of ``v`` (those with at
        least one neighbor of ``v``)."""
        return self._neighbor_mirrors[v]

    def neighbor_mirror_counts(self) -> np.ndarray:
        """``len(neighbor_mirrors(v))`` for every vertex as one array —
        the vectorized barrier charges sync messages from it."""
        return self._neighbor_mirror_counts

    def all_mirrors(self, v: int) -> FrozenSet[int]:
        """Every remote partition — used when virtual edges force a full
        broadcast (§IV-C, last paragraph)."""
        return frozenset(p for p in range(self._num_partitions) if p != self._owner[v])

    # ------------------------------------------------------------------
    # Aggregate statistics (used by tests and the cost model)
    # ------------------------------------------------------------------
    def replication_factor(self) -> float:
        """Average replicas (master + necessary mirrors) per vertex."""
        n = self._graph.num_vertices
        if n == 0:
            return 0.0
        total = sum(1 + len(m) for m in self._neighbor_mirrors)
        return total / n

    def partition_sizes(self) -> List[int]:
        return [len(m) for m in self._members]

    def edge_load(self) -> List[int]:
        """Out-arcs whose source is mastered by each partition — the unit of
        per-worker compute in the cost model."""
        degs = self._graph.out_csr.degrees()
        load = [0] * self._num_partitions
        for v in range(self._graph.num_vertices):
            load[int(self._owner[v])] += int(degs[v])
        return load

    def cut_arcs(self) -> int:
        """Arcs whose endpoints are mastered by different partitions."""
        owner = self._owner
        return sum(
            1
            for s, d in self._graph.out_csr.iter_arcs()
            if owner[s] != owner[d]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PartitionMap(partitions={self._num_partitions}, "
            f"sizes={self.partition_sizes()}, rf={self.replication_factor():.2f})"
        )


#: Strategy aliases accepted everywhere a strategy name is taken.
_STRATEGY_ALIASES = {"range": "chunk"}

#: Canonical strategy names, for CLIs and error messages.
PARTITION_STRATEGIES = ("hash", "chunk", "degree")


def partition_owners(graph: Graph, num_partitions: int, strategy: str = "hash") -> np.ndarray:
    """The owner-partition id per vertex for one strategy — the
    deterministic core of :func:`partition_graph`, shared with the
    distributed worker processes (which recompute ownership locally
    instead of shipping the full :class:`PartitionMap`)."""
    n = graph.num_vertices
    strategy = _STRATEGY_ALIASES.get(strategy, strategy)
    if strategy == "hash":
        owner = np.arange(n, dtype=np.int64) % num_partitions
    elif strategy == "chunk":
        owner = (np.arange(n, dtype=np.int64) * num_partitions) // max(n, 1)
    elif strategy == "degree":
        degs = graph.out_degrees()
        order = np.argsort(-degs, kind="stable")
        owner = np.zeros(n, dtype=np.int64)
        load = [0] * num_partitions
        for v in order:
            p = min(range(num_partitions), key=load.__getitem__)
            owner[v] = p
            load[p] += int(degs[v]) + 1
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}")
    return owner


def partition_graph(graph: Graph, num_partitions: int, strategy: str = "hash") -> PartitionMap:
    """Partition a graph's vertices over ``num_partitions`` workers.

    Strategies
    ----------
    ``hash``
        Vertex ``v`` goes to ``v mod m`` — the scheme used by most
        Pregel-like systems, balanced in vertex count.
    ``chunk`` (alias ``range``)
        Contiguous id ranges — mimics locality-preserving partitioners
        (fewer cut edges on id-localized graphs such as road networks).
    ``degree``
        Greedy balance on out-degree: each vertex (in decreasing degree
        order) goes to the currently lightest partition.
    """
    owner = partition_owners(graph, num_partitions, strategy)
    return PartitionMap(graph, owner, num_partitions)


@dataclass(frozen=True)
class PartitionQuality:
    """Quality measures of one partitioning (the quantities that decide
    distributed performance: cut traffic, replication, load balance)."""

    strategy: str
    num_partitions: int
    cut_arcs: int
    cut_ratio: float  #: cut arcs / total arcs
    replication_factor: float  #: avg replicas (master + necessary mirrors)
    mirror_count: int  #: total necessary-mirror entries across vertices
    vertex_balance: float  #: max partition size / ideal size (1.0 = perfect)
    edge_balance: float  #: max partition edge load / ideal load

    def as_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "num_partitions": self.num_partitions,
            "cut_arcs": self.cut_arcs,
            "cut_ratio": self.cut_ratio,
            "replication_factor": self.replication_factor,
            "mirror_count": self.mirror_count,
            "vertex_balance": self.vertex_balance,
            "edge_balance": self.edge_balance,
        }


def partition_quality(pm: PartitionMap, strategy: str = "") -> PartitionQuality:
    """Measure one :class:`PartitionMap` (see :class:`PartitionQuality`)."""
    g = pm.graph
    num_arcs = g.num_arcs
    cut = pm.cut_arcs()
    sizes = pm.partition_sizes()
    loads = pm.edge_load()
    m = pm.num_partitions
    ideal_size = g.num_vertices / m if m else 0.0
    ideal_load = sum(loads) / m if m else 0.0
    return PartitionQuality(
        strategy=strategy,
        num_partitions=m,
        cut_arcs=cut,
        cut_ratio=cut / num_arcs if num_arcs else 0.0,
        replication_factor=pm.replication_factor(),
        mirror_count=int(pm.neighbor_mirror_counts().sum()),
        vertex_balance=max(sizes) / ideal_size if ideal_size else 1.0,
        edge_balance=max(loads) / ideal_load if ideal_load else 1.0,
    )


def compare_partitioners(
    graph: Graph,
    num_partitions: int,
    strategies: Iterable[str] = ("hash", "range", "degree"),
) -> List[PartitionQuality]:
    """Partition ``graph`` with each strategy and measure the result —
    the hash- vs range-partitioner comparison behind
    ``repro partition-stats``."""
    return [
        partition_quality(partition_graph(graph, num_partitions, s), strategy=s)
        for s in strategies
    ]
