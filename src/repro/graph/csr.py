"""Compressed-sparse-row adjacency storage.

A :class:`CSR` stores, for every vertex, a contiguous slice of neighbor
ids (and the positions of the arcs it came from, so that per-arc data such
as weights can be looked up).  Both the FLASH engine and the baseline
frameworks are built on top of this structure.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np


class CSR:
    """Compressed sparse row adjacency.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of vertex ``v``
        live at ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbor ids, length equal to the number of arcs.
    arc_ids:
        ``int64`` array parallel to ``indices`` giving the index of the
        originating arc in the arc list the CSR was built from.  Used to
        look up per-arc attributes (e.g. weights).
    """

    __slots__ = ("indptr", "indices", "arc_ids")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, arc_ids: np.ndarray):
        self.indptr = indptr
        self.indices = indices
        self.arc_ids = arc_ids

    @classmethod
    def from_arcs(cls, num_vertices: int, sources: Sequence[int], targets: Sequence[int]) -> "CSR":
        """Build a CSR from parallel source/target arrays.

        Arc ``i`` is ``sources[i] -> targets[i]``; neighbor lists are sorted
        by target id for deterministic iteration and fast set intersection.
        """
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("sources and targets must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("source vertex id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("target vertex id out of range")

        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        # Stable sort by (source, target) so every adjacency slice is sorted.
        order = np.lexsort((dst, src))
        indices = dst[order]
        arc_ids = np.asarray(order, dtype=np.int64)
        return cls(indptr, indices, arc_ids)

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self.indices)

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_arcs(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbor_ids, arc_ids)`` for vertex ``v`` (views)."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.arc_ids[lo:hi]

    def has_arc(self, s: int, d: int) -> bool:
        """True when the arc ``s -> d`` is present (binary search)."""
        nbrs = self.neighbors(s)
        pos = int(np.searchsorted(nbrs, d))
        return pos < len(nbrs) and nbrs[pos] == d

    def iter_arcs(self) -> Iterator[Tuple[int, int]]:
        """Yield every arc as ``(source, target)`` in CSR order."""
        for v in range(self.num_vertices):
            for d in self.neighbors(v):
                yield v, int(d)

    def reversed(self) -> "CSR":
        """The transpose adjacency (arc ids preserved)."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
        rev = CSR.from_arcs(n, self.indices, src)
        # ``from_arcs`` numbers arcs by position in the input; map back to
        # the original arc ids so weight lookups still work.
        rev.arc_ids = self.arc_ids[rev.arc_ids]
        return rev

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CSR(num_vertices={self.num_vertices}, num_arcs={self.num_arcs})"
