"""On-disk edge-block storage for out-of-core execution.

The out-of-core backend (``backend="oocore"``, see
:mod:`repro.runtime.oocore`) keeps only vertex columns resident and
streams the graph's arcs from disk.  This module owns the disk format:

* the graph's arcs are laid out on the **in-CSR order** — target-major,
  source-ascending within each target — and partitioned into a
  destination-interval × source-interval grid of *blocks* (M-Flash's
  layout, applied to the pull direction our dense kernels scan);
* each non-empty block is persisted as plain ``.npy`` shards (``src``,
  ``dst``, ``pos`` — the arc's global in-CSR position — and ``w`` when
  the graph is weighted), opened with ``mmap_mode="r"`` so the OS pages
  arcs in on demand;
* a JSON ``manifest.json`` records the layout (format version, interval
  size, per-block arc/byte counts) plus a checksum, and the resident
  O(|V|) side arrays (degrees) ride along as ``.npy`` files.

Iterating a destination row's blocks in ascending source-interval order
replays the arcs in exact global in-CSR order — the property the
out-of-core kernels rely on for bit-identical floating-point folds (see
``docs/out_of_core.md``).

:class:`BlockStore` memory-maps shards under an LRU byte budget;
:class:`BlockGraph` is a graph-shaped handle over a store for graphs
that were never resident (built by :func:`build_block_store_streamed`).
"""

from __future__ import annotations

import json
import math
import os
import shutil
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

#: On-disk format version; bump on any incompatible layout change.
BLOCK_FORMAT_VERSION = 1

#: Default memory budget for mapped blocks (bytes) when none is given.
DEFAULT_BUDGET = 64 * 1024 * 1024


def default_interval(num_vertices: int) -> int:
    """The destination/source interval width used when none is given:
    at most a 16x16 block grid, never below 256 vertices per interval
    (tiny graphs collapse to a single block)."""
    return max(256, math.ceil(max(num_vertices, 1) / 16))


def _close_mmap(array: np.ndarray) -> None:
    """Release the file mapping behind a ``np.load(mmap_mode=...)``
    array so its descriptor closes now, not at GC time."""
    mm = getattr(array, "_mmap", None)
    if mm is not None:
        try:
            mm.close()
        except (BufferError, ValueError):  # still referenced elsewhere
            pass


@dataclass(frozen=True)
class BlockMeta:
    """Manifest entry for one non-empty block."""

    di: int  #: destination-interval index
    si: int  #: source-interval index
    arcs: int
    bytes: int  #: total shard bytes on disk


class Block:
    """One loaded (memory-mapped) block's parallel arc arrays."""

    __slots__ = ("meta", "src", "dst", "pos", "w")

    def __init__(self, meta: BlockMeta, src, dst, pos, w=None):
        self.meta = meta
        self.src = src
        self.dst = dst
        self.pos = pos
        self.w = w

    def arrays(self) -> List[np.ndarray]:
        out = [self.src, self.dst, self.pos]
        if self.w is not None:
            out.append(self.w)
        return out


def _manifest_checksum(core: Dict) -> int:
    """CRC32 over the canonical JSON of the manifest core (everything
    except the checksum itself) — cheap tamper/truncation detection."""
    payload = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def _block_stem(di: int, si: int) -> str:
    return f"b{di}_{si}"


class _BlockWriter:
    """Shared shard-writing core of the two builders."""

    def __init__(self, directory: Path, weighted: bool):
        self.directory = directory
        self.weighted = weighted
        self.blocks: List[Dict] = []
        (directory / "blocks").mkdir(parents=True, exist_ok=True)

    def write(self, di: int, si: int, src, dst, pos, w=None) -> None:
        if len(src) == 0:
            return
        stem = self.directory / "blocks" / _block_stem(di, si)
        arrays = {"src": src, "dst": dst, "pos": pos}
        if self.weighted:
            arrays["w"] = w
        total = 0
        for name, arr in arrays.items():
            path = Path(f"{stem}.{name}.npy")
            np.save(path, np.ascontiguousarray(arr))
            total += path.stat().st_size
        self.blocks.append(
            {"di": di, "si": si, "arcs": int(len(src)), "bytes": int(total)}
        )

    def finish(
        self,
        num_vertices: int,
        num_arcs: int,
        num_edges: int,
        directed: bool,
        interval: int,
        out_degrees: np.ndarray,
        in_degrees: np.ndarray,
    ) -> Path:
        np.save(self.directory / "out_degrees.npy", out_degrees.astype(np.int64))
        np.save(self.directory / "in_degrees.npy", in_degrees.astype(np.int64))
        core = {
            "format_version": BLOCK_FORMAT_VERSION,
            "num_vertices": int(num_vertices),
            "num_arcs": int(num_arcs),
            "num_edges": int(num_edges),
            "directed": bool(directed),
            "weighted": bool(self.weighted),
            "interval": int(interval),
            "num_intervals": max(1, math.ceil(num_vertices / interval)),
            "blocks": sorted(self.blocks, key=lambda b: (b["di"], b["si"])),
        }
        manifest = dict(core)
        manifest["checksum"] = _manifest_checksum(core)
        path = self.directory / "manifest.json"
        path.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        return path


def build_block_store(
    graph, directory: PathLike, interval: Optional[int] = None
) -> "BlockStore":
    """Partition ``graph``'s arcs (in-CSR order) into interval×interval
    blocks under ``directory`` and return an opened :class:`BlockStore`.

    Built once per graph; subsequent runs re-open the shards.  The
    in-CSR covers *every* arc (both directions for undirected graphs),
    so the one layout serves both the pull (dense) and push (sparse)
    kernels.
    """
    directory = Path(directory)
    n = graph.num_vertices
    if interval is None:
        interval = default_interval(n)
    interval = max(1, int(interval))
    num_intervals = max(1, math.ceil(n / interval))

    in_csr = graph.in_csr
    indptr = in_csr.indptr
    srcs = in_csr.indices
    in_degrees = np.diff(indptr)
    weighted = graph.weighted
    weights = graph.arc_weights(in_csr.arc_ids) if weighted else None

    writer = _BlockWriter(directory, weighted)
    for di in range(num_intervals):
        lo_v = di * interval
        hi_v = min(n, lo_v + interval)
        lo, hi = int(indptr[lo_v]), int(indptr[hi_v])
        if lo == hi:
            continue
        row_src = srcs[lo:hi]
        row_dst = np.repeat(
            np.arange(lo_v, hi_v, dtype=np.int64), in_degrees[lo_v:hi_v]
        )
        row_pos = np.arange(lo, hi, dtype=np.int64)
        sis = row_src // interval
        for si in range(num_intervals):
            idx = np.flatnonzero(sis == si)  # ascending == global pos order
            writer.write(
                di, si, row_src[idx], row_dst[idx], row_pos[idx],
                weights[lo:hi][idx] if weighted else None,
            )
    writer.finish(
        n, graph.num_arcs, graph.num_edges, graph.directed, interval,
        graph.out_degrees(), in_degrees,
    )
    return BlockStore(directory)


def build_block_store_streamed(
    directory: PathLike,
    num_vertices: int,
    chunks: Callable[[], Iterable[Tuple[np.ndarray, np.ndarray]]],
    directed: bool = False,
    interval: Optional[int] = None,
) -> "BlockStore":
    """Build a block store for a graph that is never resident.

    ``chunks`` is a zero-argument callable returning an iterable of
    ``(src, dst)`` edge-array chunks (it is consumed twice — pass a
    generator *factory*, e.g. a seeded random generator).  Undirected
    edges are mirrored internally.  Memory use is bounded by the largest
    destination row (``interval`` × average degree arcs), never the
    whole edge list — the external bucket sort that makes ≥10×-of-RAM
    graphs buildable.
    """
    directory = Path(directory)
    n = int(num_vertices)
    if interval is None:
        interval = default_interval(n)
    interval = max(1, int(interval))
    num_intervals = max(1, math.ceil(n / interval))

    def _arc_chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for src, dst in chunks():
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            if src.size and (src.min() < 0 or src.max() >= n
                             or dst.min() < 0 or dst.max() >= n):
                raise ValueError("edge chunk has a vertex id out of range")
            yield src, dst
            if not directed:
                yield dst, src

    # pass 1: degree counts (the resident O(|V|) side arrays)
    out_deg = np.zeros(n, dtype=np.int64)
    in_deg = np.zeros(n, dtype=np.int64)
    num_arcs = 0
    num_edges = 0
    for src, dst in chunks():
        num_edges += len(src)
    for src, dst in _arc_chunks():
        num_arcs += len(src)
        out_deg += np.bincount(src, minlength=n)
        in_deg += np.bincount(dst, minlength=n)
    in_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(in_deg, out=in_indptr[1:])

    # pass 2: bucket arcs into destination rows on disk
    spill = directory / "_rows"
    spill.mkdir(parents=True, exist_ok=True)
    handles: Dict[int, Tuple] = {}
    try:
        for src, dst in _arc_chunks():
            dis = dst // interval
            for di in np.unique(dis).tolist():
                sel = dis == di
                pair = handles.get(di)
                if pair is None:
                    pair = (
                        open(spill / f"r{di}.src", "ab"),
                        open(spill / f"r{di}.dst", "ab"),
                    )
                    handles[di] = pair
                src[sel].tofile(pair[0])
                dst[sel].tofile(pair[1])
    finally:
        for fs, fd in handles.values():
            fs.close()
            fd.close()

    writer = _BlockWriter(directory, weighted=False)
    try:
        for di in range(num_intervals):
            src_path = spill / f"r{di}.src"
            if not src_path.exists():
                continue
            row_src = np.fromfile(src_path, dtype=np.int64)
            row_dst = np.fromfile(spill / f"r{di}.dst", dtype=np.int64)
            # global in-CSR order: (dst, src) ascending within the row
            order = np.lexsort((row_src, row_dst))
            row_src = row_src[order]
            row_dst = row_dst[order]
            row_pos = int(in_indptr[di * interval]) + np.arange(
                len(row_src), dtype=np.int64
            )
            sis = row_src // interval
            for si in range(num_intervals):
                idx = np.flatnonzero(sis == si)
                writer.write(di, si, row_src[idx], row_dst[idx], row_pos[idx])
    finally:
        shutil.rmtree(spill, ignore_errors=True)
    writer.finish(n, num_arcs, num_edges, directed, interval, out_deg, in_deg)
    return BlockStore(directory)


class BlockStore:
    """Memory-mapped access to a built block grid, under a byte budget.

    ``get`` maps a block's shards on first touch and keeps them in an
    LRU cache; once the summed shard bytes exceed ``budget``, the
    least-recently-used blocks are unmapped (their descriptors closed),
    so resident block memory — and therefore the page cache the process
    can pin — stays bounded.  A single block larger than the whole
    budget is still usable: the cache always keeps at least the block
    being served.
    """

    def __init__(self, directory: PathLike, budget: Optional[int] = None):
        self.directory = Path(directory)
        manifest_path = self.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != BLOCK_FORMAT_VERSION:
            raise ValueError(
                f"{manifest_path}: block store format v{version} not supported "
                f"(expected v{BLOCK_FORMAT_VERSION})"
            )
        core = {k: v for k, v in manifest.items() if k != "checksum"}
        if _manifest_checksum(core) != manifest.get("checksum"):
            raise ValueError(f"{manifest_path}: manifest checksum mismatch")
        self.num_vertices: int = manifest["num_vertices"]
        self.num_arcs: int = manifest["num_arcs"]
        self.num_edges: int = manifest["num_edges"]
        self.directed: bool = manifest["directed"]
        self.weighted: bool = manifest["weighted"]
        self.interval: int = manifest["interval"]
        self.num_intervals: int = manifest["num_intervals"]
        self._meta: Dict[Tuple[int, int], BlockMeta] = {
            (b["di"], b["si"]): BlockMeta(b["di"], b["si"], b["arcs"], b["bytes"])
            for b in manifest["blocks"]
        }
        self.total_bytes: int = sum(m.bytes for m in self._meta.values())
        self.budget: int = DEFAULT_BUDGET if budget is None else max(1, int(budget))
        self._cache: "OrderedDict[Tuple[int, int], Block]" = OrderedDict()
        self._mapped_bytes = 0
        self._closed = False
        #: Lifetime counters (the leak test and benchmarks read these).
        self.blocks_loaded = 0
        self.blocks_evicted = 0
        #: Optional cache-miss hook ``fn(meta)`` — the oocore runtime
        #: uses it to charge block reads to the running superstep.
        self.on_miss: Optional[Callable[[BlockMeta], None]] = None

    # ------------------------------------------------------------------
    def block_meta(self, di: int, si: int) -> Optional[BlockMeta]:
        return self._meta.get((di, si))

    def row_metas(self, di: int) -> List[BlockMeta]:
        """Non-empty blocks of destination row ``di``, ascending ``si``."""
        return [
            m for (d, _s), m in sorted(self._meta.items()) if d == di
        ]

    @property
    def mapped_bytes(self) -> int:
        return self._mapped_bytes

    def out_degrees(self) -> np.ndarray:
        return np.load(self.directory / "out_degrees.npy")

    def in_degrees(self) -> np.ndarray:
        return np.load(self.directory / "in_degrees.npy")

    # ------------------------------------------------------------------
    def get(self, di: int, si: int) -> Tuple[Block, bool]:
        """The block at ``(di, si)`` and whether it was already mapped
        (``True`` = cache hit, no I/O charged by the caller)."""
        if self._closed:
            raise RuntimeError("block store is closed")
        key = (di, si)
        block = self._cache.get(key)
        if block is not None:
            self._cache.move_to_end(key)
            return block, True
        meta = self._meta.get(key)
        if meta is None:
            raise KeyError(f"no block at {key}")
        stem = self.directory / "blocks" / _block_stem(di, si)
        src = np.load(f"{stem}.src.npy", mmap_mode="r")
        dst = np.load(f"{stem}.dst.npy", mmap_mode="r")
        pos = np.load(f"{stem}.pos.npy", mmap_mode="r")
        w = np.load(f"{stem}.w.npy", mmap_mode="r") if self.weighted else None
        block = Block(meta, src, dst, pos, w)
        self._cache[key] = block
        self._mapped_bytes += meta.bytes
        self.blocks_loaded += 1
        if self.on_miss is not None:
            self.on_miss(meta)
        while self._mapped_bytes > self.budget and len(self._cache) > 1:
            _key, evicted = self._cache.popitem(last=False)
            self._mapped_bytes -= evicted.meta.bytes
            self.blocks_evicted += 1
            for arr in evicted.arrays():
                _close_mmap(arr)
        return block, False

    def release(self) -> None:
        """Unmap every cached block (keeps the store usable)."""
        while self._cache:
            _key, evicted = self._cache.popitem(last=False)
            for arr in evicted.arrays():
                _close_mmap(arr)
        self._mapped_bytes = 0

    def close(self) -> None:
        """Unmap all blocks and mark the store closed.  Idempotent."""
        if self._closed:
            return
        self.release()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BlockStore({self.directory}, {len(self._meta)} blocks, "
            f"{self.total_bytes}B on disk, budget={self.budget}B)"
        )


class BlockGraph:
    """A graph-shaped handle over a :class:`BlockStore` for graphs that
    were never resident: only O(|V|) arrays (degrees) live in memory;
    adjacency queries page the relevant blocks in on demand.

    Implements the :class:`~repro.graph.graph.Graph` surface the engine,
    partitioner and interpreted kernels touch — per-vertex adjacency is
    *slow* (it scans a row or column of blocks), which is exactly the
    interp-over-blocks fallback contract: correct for unsynthesizable
    kernels, fast only through the columnar block kernels.
    """

    def __init__(self, store: BlockStore):
        self.store = store
        self._out_degrees = store.out_degrees()
        self._in_degrees = store.in_degrees()

    # -- Graph surface -------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.store.num_vertices

    @property
    def num_arcs(self) -> int:
        return self.store.num_arcs

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def directed(self) -> bool:
        return self.store.directed

    @property
    def weighted(self) -> bool:
        return self.store.weighted

    def vertices(self) -> range:
        return range(self.num_vertices)

    def out_degrees(self) -> np.ndarray:
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        return self._in_degrees

    def degrees(self) -> np.ndarray:
        if self.directed:
            return self._out_degrees + self._in_degrees
        return self._out_degrees

    def out_degree(self, v: int) -> int:
        return int(self._out_degrees[v])

    def in_degree(self, v: int) -> int:
        return int(self._in_degrees[v])

    def degree(self, v: int) -> int:
        if self.directed:
            return self.out_degree(v) + self.in_degree(v)
        return self.out_degree(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted in-neighbor ids of ``v`` (reads row ``v // interval``)."""
        store = self.store
        di = v // store.interval
        parts = []
        for meta in store.row_metas(di):
            block, _hit = store.get(di, meta.si)
            lo = int(np.searchsorted(block.dst, v, side="left"))
            hi = int(np.searchsorted(block.dst, v, side="right"))
            if hi > lo:
                parts.append(np.asarray(block.src[lo:hi]))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbor ids of ``v`` (scans column ``v // interval``)."""
        store = self.store
        si = v // store.interval
        parts = []
        for di in range(store.num_intervals):
            if store.block_meta(di, si) is None:
                continue
            block, _hit = store.get(di, si)
            src = np.asarray(block.src)
            sel = src == v
            if sel.any():
                parts.append(np.asarray(block.dst)[sel])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    # -- partitioner fast path ----------------------------------------
    def neighbor_partition_mask(
        self, owner: np.ndarray, num_partitions: int
    ) -> np.ndarray:
        """``(n, P)`` boolean mask: partition ``p`` holds a neighbor of
        vertex ``v``.  One streaming pass over all blocks — the bulk
        replacement for the per-vertex adjacency scan
        :class:`~repro.graph.partition.PartitionMap` would otherwise
        need (prohibitive through block-paged adjacency)."""
        n = self.num_vertices
        mask = np.zeros((n, num_partitions), dtype=bool)
        store = self.store
        for di in range(store.num_intervals):
            for meta in store.row_metas(di):
                block, _hit = store.get(di, meta.si)
                src = np.asarray(block.src)
                dst = np.asarray(block.dst)
                mask[src, owner[dst]] = True
                mask[dst, owner[src]] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "directed" if self.directed else "undirected"
        return (
            f"BlockGraph({kind}, |V|={self.num_vertices}, |E|={self.num_edges}, "
            f"{self.store.total_bytes}B on disk)"
        )
