"""The property graph type shared by FLASH and the baseline frameworks.

A :class:`Graph` is immutable once constructed (per the paper, edges are
viewed as immutable objects; all mutable state lives in vertex properties
managed by the runtime).  It offers out/in adjacency in CSR form, degree
accessors, optional per-edge weights and a handful of structural helpers
used by tests and algorithms.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSR

EdgeTuple = Tuple[int, int]
WeightedEdgeTuple = Tuple[int, int, float]


class Graph:
    """A directed or undirected (property) graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are dense integers ``0 .. n-1``.
    edges:
        Iterable of ``(source, target)`` pairs.  For undirected graphs each
        pair is stored once but traversed in both directions.
    directed:
        Whether edges are one-way.
    weights:
        Optional per-edge weights, parallel to ``edges``.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[EdgeTuple],
        directed: bool = False,
        weights: Optional[Sequence[float]] = None,
    ):
        edge_list = [(int(s), int(d)) for s, d in edges]
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        for s, d in edge_list:
            if not (0 <= s < num_vertices and 0 <= d < num_vertices):
                raise ValueError(f"edge ({s}, {d}) out of range for {num_vertices} vertices")

        self._num_vertices = num_vertices
        self._edges: List[EdgeTuple] = edge_list
        self._directed = directed

        if weights is not None:
            if len(weights) != len(edge_list):
                raise ValueError("weights must be parallel to edges")
            self._weights: Optional[np.ndarray] = np.asarray(weights, dtype=np.float64)
        else:
            self._weights = None

        src = np.fromiter((e[0] for e in edge_list), dtype=np.int64, count=len(edge_list))
        dst = np.fromiter((e[1] for e in edge_list), dtype=np.int64, count=len(edge_list))
        if directed:
            self._out = CSR.from_arcs(num_vertices, src, dst)
            self._in = CSR.from_arcs(num_vertices, dst, src)
        else:
            both_src = np.concatenate([src, dst])
            both_dst = np.concatenate([dst, src])
            csr = CSR.from_arcs(num_vertices, both_src, both_dst)
            # Arcs beyond len(edge_list) are the mirrored copies; fold their
            # ids back onto the originating undirected edge.
            csr.arc_ids = csr.arc_ids % max(len(edge_list), 1)
            self._out = csr
            self._in = csr

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """|V|."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """|E| — logical edges as supplied (undirected edges counted once)."""
        return len(self._edges)

    @property
    def num_arcs(self) -> int:
        """Stored directed arcs (2|E| for undirected graphs)."""
        return self._out.num_arcs

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def weighted(self) -> bool:
        return self._weights is not None

    @property
    def out_csr(self) -> CSR:
        return self._out

    @property
    def in_csr(self) -> CSR:
        return self._in

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(self._num_vertices)

    def edges(self) -> List[EdgeTuple]:
        """The logical edge list as supplied at construction."""
        return list(self._edges)

    def weighted_edges(self) -> Iterator[WeightedEdgeTuple]:
        """Yield ``(source, target, weight)``; weight defaults to 1.0."""
        if self._weights is None:
            for s, d in self._edges:
                yield s, d, 1.0
        else:
            for (s, d), w in zip(self._edges, self._weights):
                yield s, d, float(w)

    def edge_weight(self, arc_id: int) -> float:
        """Weight of the logical edge with index ``arc_id``."""
        if self._weights is None:
            return 1.0
        return float(self._weights[arc_id])

    def arc_weights(self, arc_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`edge_weight`: weights for an array of arc
        ids (all 1.0 for unweighted graphs)."""
        if self._weights is None:
            return np.ones(len(arc_ids), dtype=np.float64)
        return self._weights[arc_ids]

    def weight(self, s: int, d: int) -> float:
        """Weight of the arc ``s -> d`` (1.0 for unweighted graphs)."""
        neighbors, arcs = self._out.neighbor_arcs(s)
        pos = int(np.searchsorted(neighbors, d))
        if pos >= len(neighbors) or neighbors[pos] != d:
            raise KeyError(f"no edge ({s}, {d})")
        return self.edge_weight(int(arcs[pos]))

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbor ids of ``v``."""
        return self._out.neighbors(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted in-neighbor ids of ``v`` (== out for undirected)."""
        return self._in.neighbors(v)

    def out_degree(self, v: int) -> int:
        return self._out.degree(v)

    def in_degree(self, v: int) -> int:
        return self._in.degree(v)

    def degree(self, v: int) -> int:
        """Total degree: out-degree for undirected, in+out for directed."""
        if self._directed:
            return self.out_degree(v) + self.in_degree(v)
        return self.out_degree(v)

    def out_degrees(self) -> np.ndarray:
        return self._out.degrees()

    def in_degrees(self) -> np.ndarray:
        return self._in.degrees()

    def degrees(self) -> np.ndarray:
        if self._directed:
            return self._out.degrees() + self._in.degrees()
        return self._out.degrees()

    def has_edge(self, s: int, d: int) -> bool:
        """True when an arc ``s -> d`` exists (either direction stored for
        undirected graphs)."""
        return self._out.has_arc(s, d)

    # ------------------------------------------------------------------
    # Constructors & transforms
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[EdgeTuple],
        directed: bool = False,
        num_vertices: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> "Graph":
        """Build a graph from an edge list, inferring |V| when omitted."""
        edge_list = [(int(s), int(d)) for s, d in edges]
        if num_vertices is None:
            num_vertices = 1 + max((max(s, d) for s, d in edge_list), default=-1)
        return cls(num_vertices, edge_list, directed=directed, weights=weights)

    def reverse(self) -> "Graph":
        """The graph with every edge direction flipped."""
        weights = list(self._weights) if self._weights is not None else None
        return Graph(
            self._num_vertices,
            [(d, s) for s, d in self._edges],
            directed=self._directed,
            weights=weights,
        )

    def as_undirected(self) -> "Graph":
        """An undirected copy (duplicate arcs collapsed, self-loops kept)."""
        if not self._directed:
            return self
        seen = set()
        edges = []
        weights = [] if self._weights is not None else None
        for idx, (s, d) in enumerate(self._edges):
            key = (min(s, d), max(s, d))
            if key in seen:
                continue
            seen.add(key)
            edges.append(key)
            if weights is not None:
                weights.append(float(self._weights[idx]))
        return Graph(self._num_vertices, edges, directed=False, weights=weights)

    def subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", List[int]]:
        """The induced subgraph on ``vertices``.

        Returns ``(subgraph, mapping)`` where ``mapping[new_id]`` is the
        original vertex id (vertices are renumbered densely in sorted
        order).  Weights are carried over.
        """
        keep = sorted({int(v) for v in vertices})
        for v in keep:
            if not 0 <= v < self._num_vertices:
                raise ValueError(f"vertex {v} out of range")
        index = {old: new for new, old in enumerate(keep)}
        edges = []
        weights: Optional[List[float]] = [] if self._weights is not None else None
        for arc_id, (s, d) in enumerate(self._edges):
            if s in index and d in index:
                edges.append((index[s], index[d]))
                if weights is not None:
                    weights.append(float(self._weights[arc_id]))
        sub = Graph(len(keep), edges, directed=self._directed, weights=weights)
        return sub, keep

    def with_random_weights(self, seed: int = 0, low: float = 1.0, high: float = 100.0) -> "Graph":
        """A copy with uniformly random edge weights (paper §V-A: "random
        weights are added to each of the edges if necessary")."""
        rng = np.random.default_rng(seed)
        weights = rng.uniform(low, high, size=len(self._edges))
        return Graph(self._num_vertices, list(self._edges), directed=self._directed, weights=weights)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "directed" if self._directed else "undirected"
        return f"Graph({kind}, |V|={self.num_vertices}, |E|={self.num_edges})"
