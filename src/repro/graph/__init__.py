"""Graph substrate: property graphs, adjacency storage, generators, I/O,
and edge-cut partitioning.

This package provides everything FLASH (and the baseline frameworks) need
from the data layer: a compact CSR-backed :class:`~repro.graph.graph.Graph`,
deterministic synthetic dataset generators that mimic the paper's six
real-world graphs, simple edge-list I/O, and the partitioner that assigns
masters and mirrors to simulated workers.
"""

from repro.graph.csr import CSR
from repro.graph.graph import Graph
from repro.graph.generators import (
    DATASETS,
    bipartite_graph,
    complete_graph,
    load_dataset,
    random_graph,
    rmat_graph,
    road_network,
    social_network,
    star_graph,
    web_graph,
)
from repro.graph.io import (
    load_graph,
    read_adjacency_list,
    read_edge_list,
    read_metis,
    save_graph,
    write_adjacency_list,
    write_edge_list,
    write_metis,
)
from repro.graph.partition import PartitionMap, partition_graph

__all__ = [
    "CSR",
    "Graph",
    "DATASETS",
    "load_dataset",
    "random_graph",
    "rmat_graph",
    "bipartite_graph",
    "complete_graph",
    "star_graph",
    "road_network",
    "social_network",
    "web_graph",
    "load_graph",
    "save_graph",
    "read_adjacency_list",
    "read_edge_list",
    "read_metis",
    "write_adjacency_list",
    "write_edge_list",
    "write_metis",
    "PartitionMap",
    "partition_graph",
]
