"""Command-line entry point: quick demos and experiment regeneration.

Usage::

    python -m repro list                       # list datasets and apps
    python -m repro run bfs OR                 # run one app on one dataset
    python -m repro run bfs OR --trace out.jsonl   # ... with structured tracing
    python -m repro trace summarize out.jsonl  # per-primitive cost table
    python -m repro compare mis OR             # all 5 frameworks, one app
    python -m repro run cc OR --executor mp    # real multiprocess workers
    python -m repro partition-stats OR         # hash vs range vs degree cuts
    python -m repro lloc                       # Table I (measured vs paper)
    python -m repro lint --all                 # flashlint over every app
    python -m repro lint bfs cc --json         # ... selected apps, JSON out
    python -m repro serve OR --clients 16      # graph-as-a-service load run

The full benchmark harness lives in ``benchmarks/`` (pytest-benchmark).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext

from repro import load_dataset
from repro.analysis import paper
from repro.core.analysis import ANALYSIS_MODES
from repro.analysis.lloc import TABLE1_ALGORITHMS, TABLE1_FRAMEWORKS, table1_rows
from repro.analysis.tables import format_table
from repro.graph.generators import DATASETS
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import make_policy
from repro.runtime.tracing import (
    ChromeTraceSink,
    JsonlSink,
    Tracer,
    format_trace_summary,
    load_trace,
)
from repro.runtime.oocore import use_oocore
from repro.runtime.vectorized.dispatch import BACKENDS
from repro.serving.loadgen import WORKLOADS
from repro.suite import APPS, FRAMEWORKS, prepare_graph, run_app


def _oocore_ctx(args):
    """Ambient out-of-core options for the duration of one command —
    engines built inside the suite/server pick them up via
    :func:`repro.runtime.oocore.use_oocore`."""
    budget_mb = getattr(args, "oocore_budget_mb", None)
    if budget_mb is None:
        return nullcontext()
    return use_oocore(budget=int(budget_mb * 1024 * 1024))


def cmd_list(_args) -> int:
    print("datasets (Table III analogues):")
    for name, spec in DATASETS.items():
        print(f"  {name:3s} ~ {spec.paper_name:12s} [{spec.domain}] {spec.description}")
    print(f"\napplications (Table IV): {', '.join(APPS)}")
    print(f"frameworks: {', '.join(FRAMEWORKS)}")
    return 0


def _load(app: str, dataset: str, scale: float):
    graph = load_dataset(dataset, scale=scale, directed=(app == "scc"))
    return prepare_graph(app, graph)


def _fault_kwargs(args) -> dict:
    """Translate the --faults/--checkpoint* flags into run_app kwargs."""
    kwargs = {}
    if getattr(args, "faults", None):
        kwargs["faults"] = FaultPlan.parse(args.faults)
    if getattr(args, "faults", None) or getattr(args, "checkpoint_every", None) \
            or getattr(args, "checkpoint", None):
        policy, every = getattr(args, "checkpoint", None), getattr(args, "checkpoint_every", None)
        kwargs["checkpoint_policy"] = lambda: make_policy(policy, every)
    return kwargs


def _print_recovery(extra: dict, cost) -> None:
    stats = extra.get("recovery")
    if not stats:
        return
    overhead = cost.checkpoint + cost.recovery
    share = overhead / cost.total if cost.total else 0.0
    print(f"  recovery: {stats['failures']} failure(s), "
          f"{stats['checkpoints_written']} checkpoint(s) written "
          f"({stats['checkpoint_values']} values), "
          f"{stats['replayed_supersteps']} superstep(s) replayed, "
          f"{stats['restore_values']} values restored")
    print(f"  recovery share of simulated cost: {share:.1%} "
          f"(checkpoint {cost.checkpoint * 1e3:.3f} ms + "
          f"recovery {cost.recovery * 1e3:.3f} ms)")
    for line in stats["failure_log"]:
        print(f"    - {line}")


def _make_tracer(args) -> Tracer:
    """Build the tracer behind ``--trace PATH --trace-format FORMAT``."""
    if args.trace_format == "chrome":
        return Tracer(ChromeTraceSink(args.trace))
    return Tracer(JsonlSink(args.trace))


def _print_distributed(extra: dict) -> None:
    dist = extra.get("distributed")
    if not dist:
        return
    print(f"  distributed: {dist['workers']} worker process(es), "
          f"{dist['sync_entries']} real sync + {dist['extra_entries']} extra "
          f"+ {dist['commit_entries']} commit entries, "
          f"{dist['reduce_entries']} reduce entries, "
          f"{dist['bytes_sent']}B sent / {dist['bytes_recv']}B recv")


def cmd_run(args) -> int:
    graph = _load(args.app, args.dataset, args.scale)
    tracer = _make_tracer(args) if args.trace else None
    try:
        with _oocore_ctx(args):
            run = run_app(
                "flash", args.app, graph, num_workers=args.workers, backend=args.backend,
                analysis=args.analysis, tracer=tracer, executor=args.executor,
                **_fault_kwargs(args),
            )
    finally:
        if tracer is not None:
            tracer.close()
    cluster = ClusterSpec(nodes=args.workers, cores_per_node=32)
    cost = run.cost(cluster, CostModel())
    print(f"{args.app} on {args.dataset} ({graph})")
    print(f"  metrics: {run.metrics.summary()}")
    print(f"  backend: {args.backend} (supersteps by executor: "
          f"{run.metrics.backend_choices or {'interp': run.metrics.num_supersteps}})")
    print(f"  EDGEMAP mode choices: {run.metrics.mode_choices}")
    print(f"  simulated time on {args.workers}x32 cores: {cost.total * 1e3:.3f} ms")
    _print_distributed(run.extra)
    _print_recovery(run.extra, cost)
    if run.extra:
        preview = {k: v for k, v in run.extra.items() if not isinstance(v, (dict, list))}
        if preview:
            print(f"  extra: {preview}")
    if tracer is not None:
        print(f"  trace: {tracer.spans_emitted} span(s) -> {args.trace} "
              f"[{args.trace_format}]")
        if args.trace_format == "chrome":
            print("  open in chrome://tracing or https://ui.perfetto.dev")
        else:
            print(f"  summarize with: python -m repro trace summarize {args.trace}")
    return 0


def cmd_trace(args) -> int:
    spans = load_trace(args.file)
    if not spans:
        print(f"no spans found in {args.file}")
        return 1
    print(format_trace_summary(spans, top=args.top))
    return 0


def cmd_compare(args) -> int:
    graph = _load(args.app, args.dataset, args.scale)
    model = CostModel()
    rows = []
    flash_modes = None
    flash_recovery = None
    flash_io = None
    fault_kwargs = _fault_kwargs(args)
    for framework in FRAMEWORKS:
        workers = 1 if framework == "ligra" else args.workers
        backend = args.backend if framework == "flash" else None
        analysis = args.analysis if framework == "flash" else None
        # Faults strike flash only — baselines have no recovery layer, so
        # they run fault-free for reference.
        kwargs = dict(fault_kwargs) if framework == "flash" else {}
        if framework == "flash":
            kwargs["executor"] = args.executor
        with _oocore_ctx(args) if framework == "flash" else nullcontext():
            run = run_app(framework, args.app, graph, num_workers=workers,
                          backend=backend, analysis=analysis, **kwargs)
        if run is None:
            rows.append([framework, "-", "-", "inexpressible"])
            continue
        cluster = ClusterSpec(nodes=workers, cores_per_node=32)
        name = f"flash[{args.backend}]" if framework == "flash" else framework
        if framework == "flash" and args.executor != "inline":
            name = f"flash[{args.executor}]"
        cost = run.cost(cluster, model)
        if framework == "flash":
            flash_modes = run.metrics.mode_choices
            if run.extra.get("recovery"):
                flash_recovery = (run.extra, cost)
            if run.metrics.total_blocks_read:
                flash_io = (run.metrics.total_blocks_read,
                            run.metrics.total_bytes_read, cost.io)
        rows.append(
            [
                name,
                run.metrics.num_supersteps,
                run.metrics.total_messages,
                f"{cost.total * 1e3:.3f}ms",
            ]
        )
    print(format_table(["framework", "supersteps", "messages", "sim. time"], rows,
                       title=f"{args.app} on {args.dataset} ({graph})"))
    if flash_modes is not None:
        print(f"flash EDGEMAP mode choices: {flash_modes}")
    if flash_io is not None:
        blocks, nbytes, io_cost = flash_io
        print(f"flash out-of-core I/O: {blocks} block read(s), {nbytes}B "
              f"({io_cost * 1e3:.3f}ms simulated)")
    if flash_recovery is not None:
        extra, cost = flash_recovery
        print("flash fault tolerance:")
        _print_recovery(extra, cost)
    return 0


def cmd_partition_stats(args) -> int:
    from repro.graph.partition import PARTITION_STRATEGIES, compare_partitioners

    graph = load_dataset(args.dataset, scale=args.scale)
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    for s in strategies:
        if s not in PARTITION_STRATEGIES and s != "range":
            print(f"partition-stats: unknown strategy {s!r}; expected any of: "
                  f"{', '.join(PARTITION_STRATEGIES)} (or alias 'range')",
                  file=sys.stderr)
            return 2
    qualities = compare_partitioners(graph, args.workers, strategies)
    if args.json:
        print(json.dumps([q.as_dict() for q in qualities], indent=2, sort_keys=True))
        return 0
    rows = [
        [
            q.strategy,
            q.cut_arcs,
            f"{q.cut_ratio:.1%}",
            f"{q.replication_factor:.2f}",
            q.mirror_count,
            f"{q.vertex_balance:.2f}",
            f"{q.edge_balance:.2f}",
        ]
        for q in qualities
    ]
    print(format_table(
        ["strategy", "cut arcs", "cut ratio", "repl. factor",
         "mirrors", "vtx balance", "edge balance"],
        rows,
        title=f"partition quality on {args.dataset} ({graph}) over "
              f"{args.workers} workers",
    ))
    best = min(qualities, key=lambda q: q.cut_arcs)
    print(f"fewest cut arcs: {best.strategy} "
          f"({best.cut_arcs} cut, replication factor {best.replication_factor:.2f})")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.staticpass import RULES, lint_apps, summarize

    if args.rules:
        print("flashlint rule catalog:")
        for rule, (severity, description) in RULES.items():
            print(f"  {rule:24s} [{severity:7s}] {description}")
        return 0
    if not args.all and not args.app:
        print("lint: name at least one app, or pass --all", file=sys.stderr)
        return 2
    unknown = [app for app in args.app if app not in APPS]
    if unknown:
        print(f"lint: unknown app(s) {', '.join(unknown)}; "
              f"expected any of: {', '.join(APPS)}", file=sys.stderr)
        return 2
    findings_by_app = lint_apps(None if args.all else args.app)
    payload = summarize(findings_by_app)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for app in payload["apps"]:
            for finding in findings_by_app[app]:
                print(finding.render())
        print(
            f"linted {len(payload['apps'])} app(s): "
            f"{payload['errors']} error(s), {payload['warnings']} warning(s)"
        )
    return 1 if payload["errors"] else 0


def cmd_plan(args) -> int:
    from repro.analysis.compile import build_plan, cross_validate, render_plan

    plan = build_plan(args.app, num_workers=args.workers)
    payload = plan.describe()
    if args.check:
        check = cross_validate(args.app, num_workers=args.workers)
        payload["crosscheck"] = check.describe()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_plan(plan))
        if args.check:
            check_out = payload["crosscheck"]
            verdict = "identical" if check_out["ok"] else "DIVERGED"
            swapped = check_out["swapped"]
            print()
            print(f"crosscheck (synthesized vs hand specs): {verdict}; "
                  f"{len(swapped)} kernel(s) swapped")
            for kernel in swapped:
                print(f"  {kernel}")
            if not check_out["ok"]:
                for variant in check_out["variants"]:
                    for mismatch in variant["mismatches"]:
                        print(f"  {variant['variant']}: {mismatch}")
    if args.check and not payload["crosscheck"]["ok"]:
        return 1
    return 0


def cmd_serve(args) -> int:
    from repro.serving import run_load

    graph = load_dataset(args.dataset, scale=args.scale)
    tracer = _make_tracer(args) if args.trace else None
    try:
        with _oocore_ctx(args):
            report = run_load(
                graph,
                clients=args.clients,
                requests_per_client=args.requests,
                workload=args.workload,
                batching=not args.no_batching,
                caching=not args.no_caching,
                batch_window=args.batch_window,
                max_batch=args.max_batch,
                queue_depth=args.queue_depth,
                engine_pool=args.engine_pool,
                num_workers=args.workers,
                backend=args.backend,
                deadline=args.deadline,
                seed=args.seed,
                tracer=tracer,
            )
    finally:
        if tracer is not None:
            tracer.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    server = report["server"]
    print(f"served {args.workload!r} workload on {args.dataset} ({graph})")
    print(f"  clients: {args.clients} x {args.requests} requests "
          f"(closed loop), batching={not args.no_batching}, "
          f"caching={not args.no_caching}")
    print(f"  wall: {report['wall_s'] * 1e3:.1f} ms, completed: "
          f"{report['completed']}, throughput: {report['throughput_rps']} req/s")
    lat = report["client_latency_ms"]
    print(f"  client latency: p50 {lat['p50']} ms, p90 {lat['p90']} ms, "
          f"p99 {lat['p99']} ms, max {lat['max']} ms")
    batches = server["batches"]
    print(f"  batches: {batches['executed']} executed, {batches['merged']} "
          f"merged, mean occupancy {batches['occupancy_mean']}, "
          f"max {batches['occupancy_max']}")
    cache = server["cache"]["results"]
    print(f"  result cache: {cache['hits']} hit(s) / "
          f"{cache['hits'] + cache['misses']} lookup(s) "
          f"(hit rate {cache['hit_rate']:.1%}), size {cache['size']}")
    rejected = (server["requests"]["rejected_queue_full"]
                + server["requests"]["rejected_deadline"])
    if rejected:
        print(f"  rejected: {server['requests']['rejected_queue_full']} "
              f"queue-full, {server['requests']['rejected_deadline']} "
              f"deadline-expired")
    print(f"  engine supersteps spent: {server['engine_supersteps']}")
    if tracer is not None:
        print(f"  trace: {args.trace} [{args.trace_format}]")
    return 0


def cmd_lloc(_args) -> int:
    measured = dict(table1_rows())
    rows = []
    for algo in TABLE1_ALGORITHMS:
        row = [algo]
        for fw in TABLE1_FRAMEWORKS:
            mine = measured[algo][fw]
            published = paper.TABLE1[algo][fw]
            row.append(
                f"{'-' if mine is None else mine}"
                f"({'-' if published is None else published})"
            )
        rows.append(row)
    print(format_table(["algo"] + TABLE1_FRAMEWORKS, rows,
                       title="Table I LLoCs: measured(paper)"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets, applications and frameworks")

    cmd_parsers = {}
    for name, help_text in (("run", "run one app on FLASH"),
                            ("compare", "compare all frameworks on one app")):
        p = sub.add_parser(name, help=help_text)
        cmd_parsers[name] = p
        p.add_argument("app", choices=APPS)
        p.add_argument("dataset", choices=list(DATASETS))
        p.add_argument("--scale", type=float, default=0.15)
        p.add_argument("--workers", type=int, default=4)
        p.add_argument(
            "--backend",
            choices=list(BACKENDS),
            default="interp",
            help="FLASH execution backend (vectorized = NumPy columnar kernels)",
        )
        p.add_argument(
            "--executor",
            choices=["inline", "mp"],
            default="inline",
            help="FLASH execution substrate: inline (single-process "
                 "simulation) or mp (one real worker process per worker, "
                 "with actual mirror-synchronization traffic)",
        )
        p.add_argument(
            "--oocore-budget-mb",
            type=float,
            default=None,
            metavar="MB",
            help="memory budget for mapped edge blocks under "
                 "--backend oocore (default 64 MiB)",
        )
        p.add_argument(
            "--analysis",
            choices=list(ANALYSIS_MODES),
            default=None,
            help="critical-property analysis mode: static (ahead-of-time, "
                 "default), trace (runtime sampling), check (static + trace "
                 "cross-check oracle), compile (static kernel compiler: "
                 "spec synthesis + communication planning), off",
        )
        p.add_argument(
            "--faults",
            default=None,
            metavar="PLAN",
            help="inject worker failures and recover automatically; e.g. "
                 "'4' (kill a worker at superstep 4), '4:1' (kill worker 1), "
                 "'hazard=0.05,seed=7,max=2' (seeded hazard rate). "
                 "Process-level chaos modes (require --executor mp): "
                 "'kill@3:w1' (SIGKILL worker 1's OS process at superstep "
                 "3), 'hang@2:w0' (worker stops replying), 'slow@1:w2' "
                 "(worker delays every reply)",
        )
        p.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="K",
            help="periodic checkpoint interval in supersteps (default 4 "
                 "when fault tolerance is on)",
        )
        p.add_argument(
            "--checkpoint",
            choices=["periodic", "adaptive", "none"],
            default=None,
            help="checkpoint policy (adaptive amortizes snapshot cost "
                 "against superstep cost via the cost model)",
        )

    cmd_parsers["run"].add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured trace of the run (superstep/barrier/"
             "recovery spans with ops, messages, mode and backend "
             "attribution); inspect with 'repro trace summarize PATH'",
    )
    cmd_parsers["run"].add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format: jsonl (one span per line, the "
             "summarize input) or chrome (chrome://tracing / Perfetto "
             "trace_event JSON)",
    )

    p = sub.add_parser(
        "partition-stats",
        help="compare partitioning strategies (cut arcs, replication, balance)",
    )
    p.add_argument("dataset", choices=list(DATASETS))
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--strategies",
        default="hash,range,degree",
        help="comma-separated strategies to compare (hash, range/chunk, degree)",
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (one record per strategy)")

    sub.add_parser("lloc", help="Table I LLoC matrix")

    p = sub.add_parser(
        "lint",
        help="flashlint: static-analysis misuse checks over FLASH apps",
    )
    p.add_argument("app", nargs="*", metavar="app",
                   help=f"apps to lint, from: {', '.join(APPS)}")
    p.add_argument("--all", action="store_true",
                   help="lint the whole application suite")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (findings + rule catalog)")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog and exit")

    p = sub.add_parser(
        "plan",
        help="static kernel compiler plan: per-kernel classification, "
             "spec-synthesis dispatch decision and predicted sync traffic",
    )
    p.add_argument("app", choices=APPS)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--check", action="store_true",
                   help="additionally cross-validate synthesized vs "
                        "hand-written specs bit-identically")
    p.add_argument("--json", action="store_true",
                   help="machine-readable plan artifact")

    p = sub.add_parser(
        "serve",
        help="graph-as-a-service: drive closed-loop clients against the "
             "async query server (batching + versioned result cache)",
    )
    p.add_argument("dataset", choices=list(DATASETS))
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent closed-loop clients")
    p.add_argument("--requests", type=int, default=8,
                   help="requests issued per client")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="mixed",
                   help="request mix (batchable = single-source only)")
    p.add_argument("--no-batching", action="store_true",
                   help="disable multi-source request merging")
    p.add_argument("--no-caching", action="store_true",
                   help="disable the versioned result cache")
    p.add_argument("--batch-window", type=float, default=0.002, metavar="S",
                   help="batching window in seconds")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max requests merged into one run")
    p.add_argument("--queue-depth", type=int, default=None,
                   help="admission queue depth (default 2x clients)")
    p.add_argument("--engine-pool", type=int, default=2,
                   help="resident worker engines")
    p.add_argument("--workers", type=int, default=4,
                   help="FLASH workers per engine")
    p.add_argument("--backend", choices=list(BACKENDS), default=None,
                   help="FLASH execution backend for the worker engines")
    p.add_argument("--oocore-budget-mb", type=float, default=None, metavar="MB",
                   help="memory budget for mapped edge blocks under "
                        "--backend oocore (default 64 MiB)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-request deadline in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write serve.request/serve.batch spans and the final "
                        "serve.metrics snapshot (inspect with 'repro trace "
                        "summarize PATH')")
    p.add_argument("--trace-format", choices=["jsonl", "chrome"],
                   default="jsonl")
    p.add_argument("--json", action="store_true",
                   help="print the full machine-readable report")

    p = sub.add_parser("trace", help="inspect a trace file written by run --trace")
    p.add_argument("action", choices=["summarize"],
                   help="summarize: per-primitive cost table + top-k supersteps")
    p.add_argument("file", help="trace file (jsonl or chrome format)")
    p.add_argument("--top", type=int, default=10,
                   help="number of most-expensive supersteps to show")

    args = parser.parse_args(argv)
    return {"list": cmd_list, "run": cmd_run, "compare": cmd_compare,
            "lloc": cmd_lloc, "trace": cmd_trace, "lint": cmd_lint,
            "serve": cmd_serve, "plan": cmd_plan,
            "partition-stats": cmd_partition_stats}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
