"""Uniform runner used by the benchmark harness: run any of the paper's
14 applications on any of the 5 frameworks and cost the run with the
shared cost model.

FLASH entries follow the paper's reporting: where FLASH has both a basic
and an optimized variant (CC, MM, KC) the *better-costing* variant is
reported, mirroring §V-B ("we also implemented an optimized CC algorithm
... since it performs better on large-diameter graphs", MM uses the
advanced algorithm, etc.).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro import algorithms as A
from repro.baselines.registry import SUITES
from repro.core.analysis import use_analysis
from repro.core.engine import FlashEngine
from repro.errors import FlashUsageError, InexpressibleError, ReproError
from repro.graph.graph import Graph
from repro.runtime.vectorized.dispatch import use_backend
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostBreakdown, CostModel
from repro.runtime.faults import FaultPlan
from repro.runtime.metrics import Metrics
from repro.runtime.recovery import CheckpointPolicy, CheckpointStore, run_with_recovery
from repro.runtime.tracing import Tracer, use_tracer

#: Table IV application keys, in evaluation order.
APPS: List[str] = [
    "cc", "bfs", "bc", "mis", "mm", "kc", "tc", "gc",
    "scc", "bcc", "lpa", "msf", "rc", "cl",
]

#: Applications that need a directed input graph.
DIRECTED_APPS = {"scc"}

#: Applications that need edge weights.
WEIGHTED_APPS = {"msf"}

FRAMEWORKS: List[str] = ["pregel", "gas", "gemini", "ligra", "flash"]


@dataclass
class SuiteRun:
    """One (framework, app, graph) execution with its accounting."""

    framework: str
    app: str
    metrics: Metrics
    values: Any
    extra: Dict[str, Any]

    def cost(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> CostBreakdown:
        if cluster is None:
            cluster = ClusterSpec(nodes=self.metrics.num_workers, cores_per_node=32)
        return (model or CostModel()).estimate(self.metrics, cluster)

    def seconds(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> float:
        return self.cost(cluster, model).total


#: The FLASH program variants per app: callables taking
#: ``(graph_or_engine, num_workers)``.  Where the paper reports the
#: better of a basic and an optimized variant (CC, KC), both are listed
#: and the cheaper run wins — with or without fault injection.
_FLASH_VARIANTS: Dict[str, List[Callable]] = {
    "cc": [lambda ge, w: A.cc_basic(ge, num_workers=w),
           lambda ge, w: A.cc_opt(ge, num_workers=w)],
    "bfs": [lambda ge, w: A.bfs(ge, root=0, num_workers=w)],
    "bc": [lambda ge, w: A.bc(ge, root=0, num_workers=w)],
    "mis": [lambda ge, w: A.mis(ge, num_workers=w)],
    "mm": [lambda ge, w: A.mm_opt(ge, num_workers=w)],
    "kc": [lambda ge, w: A.kcore_basic(ge, num_workers=w),
           lambda ge, w: A.kcore_opt(ge, num_workers=w)],
    "tc": [lambda ge, w: A.tc(ge, num_workers=w)],
    "gc": [lambda ge, w: A.gc(ge, num_workers=w)],
    "scc": [lambda ge, w: A.scc(ge, num_workers=w)],
    "bcc": [lambda ge, w: A.bcc(ge, num_workers=w)],
    "lpa": [lambda ge, w: A.lpa(ge, num_workers=w)],
    "msf": [lambda ge, w: A.msf(ge, num_workers=w)],
    "rc": [lambda ge, w: A.rc(ge, num_workers=w)],
    "cl": [lambda ge, w: A.cl(ge, k=4, num_workers=w)],
}

_FLASH_RUNNERS: Dict[str, Callable] = {
    app: (lambda g, w, _variants=variants: _best_of(g, w, *_variants))
    for app, variants in _FLASH_VARIANTS.items()
}


def _variant_cost(result: Any) -> float:
    """Simulated cost used to pick between FLASH variants.  The I/O
    component is excluded: it reflects where the arcs live (out-of-core
    vs resident), not the algorithm, and including it would let the
    oocore backend pick a different variant than vectorized/interp —
    breaking cross-backend parity."""
    cost = result.engine.cost()
    return cost.total - cost.io


def _best_of(graph: Graph, num_workers: int, *variants: Callable) -> Any:
    best = None
    best_cost = None
    for variant in variants:
        result = variant(graph, num_workers)
        cost = _variant_cost(result)
        if best_cost is None or cost < best_cost:
            best, best_cost = result, cost
    return best


def _run_flash_direct(
    app: str,
    graph: Graph,
    num_workers: int,
    executor: str,
    cluster: Optional[ClusterSpec],
):
    """Run every variant of ``app`` on an explicitly-constructed engine
    (the non-default executor/cluster path) and keep the cheaper run.
    Returns ``(result, dist_summary_or_None)``; all engines are closed."""
    best = None
    best_cost = None
    engines = []
    try:
        for variant in _FLASH_VARIANTS[app]:
            engine = FlashEngine(
                graph, num_workers=num_workers, executor=executor, cluster=cluster
            )
            engines.append(engine)
            result = variant(engine, num_workers)
            cost = _variant_cost(result)
            if best_cost is None or cost < best_cost:
                best, best_cost = result, cost
        dist = best.engine.dist_summary() if executor == "mp" else None
    finally:
        for engine in engines:
            engine.close()
    return best, dist


def _run_flash_with_recovery(
    app: str,
    graph: Graph,
    num_workers: int,
    faults: Optional[FaultPlan],
    checkpoint_policy: Optional[Callable[[], CheckpointPolicy]],
    checkpoint_store: Optional[Callable[[], CheckpointStore]],
    max_retries: int,
    executor: str = "inline",
    cluster: Optional[ClusterSpec] = None,
):
    """Run every variant of ``app`` under recovery supervision (fresh
    engine, injector, policy and store per variant — faults must strike
    each variant identically) and keep the cheaper run."""
    best = None
    best_cost = None
    for variant in _FLASH_VARIANTS[app]:
        engine = FlashEngine(
            graph, num_workers=num_workers, executor=executor, cluster=cluster
        )
        report = run_with_recovery(
            engine,
            lambda eng, _variant=variant: _variant(eng, num_workers),
            plan=faults,
            policy=checkpoint_policy() if checkpoint_policy else None,
            store=checkpoint_store() if checkpoint_store else None,
            max_retries=max_retries,
        )
        cost = _variant_cost(report.result)
        if best_cost is None or cost < best_cost:
            if best is not None:
                best.result.engine.close()
            best, best_cost = report, cost
        else:
            report.result.engine.close()
    return best


def run_app(
    framework: str,
    app: str,
    graph: Graph,
    num_workers: int = 4,
    backend: Optional[str] = None,
    analysis: Optional[str] = None,
    faults: Optional[Union[FaultPlan, str]] = None,
    checkpoint_policy: Optional[Callable[[], CheckpointPolicy]] = None,
    checkpoint_store: Optional[Callable[[], CheckpointStore]] = None,
    max_retries: int = 5,
    tracer: Optional[Tracer] = None,
    executor: str = "inline",
    cluster: Optional[ClusterSpec] = None,
) -> Optional[SuiteRun]:
    """Run one application on one framework.

    ``backend`` selects the FLASH execution backend (``interp`` /
    ``vectorized`` / ``auto``); ``None`` keeps the ambient default.
    Baselines always interpret.

    ``executor`` selects the FLASH execution substrate: ``inline`` (the
    default single-process simulation) or ``mp`` (real worker processes,
    see :mod:`repro.runtime.distributed`).  ``cluster`` pins an explicit
    :class:`ClusterSpec`; with ``executor="mp"`` its ``nodes`` count
    becomes the number of spawned workers.  FLASH only — baselines have
    no multiprocess executor.  With ``executor="mp"`` the real
    mirror-synchronization accounting lands in
    ``SuiteRun.extra["distributed"]``.

    ``analysis`` selects the FLASH critical-property analysis mode
    (``static`` / ``trace`` / ``check`` / ``off``, see
    :func:`repro.core.analysis.use_analysis`); ``None`` keeps the
    ambient default.  FLASH only — baselines have no sync analysis.

    ``tracer`` installs a :class:`~repro.runtime.tracing.Tracer` for the
    duration of the run (ambiently, so nested engines inherit it);
    ``None`` keeps the ambient tracer — usually the no-op default.

    ``faults`` (a :class:`FaultPlan` or its CLI string form) enables
    fault injection with automatic checkpoint/rollback recovery —
    FLASH only.  ``checkpoint_policy`` / ``checkpoint_store`` are
    zero-argument factories (each program variant gets private
    instances); the defaults are a periodic every-4 policy with an
    in-memory store.  Recovery accounting lands in
    ``SuiteRun.extra["recovery"]``.

    Returns ``None`` when the framework cannot express the application
    (the paper's "—" cells); propagates real failures.
    """
    if app not in APPS:
        raise ValueError(f"unknown app {app!r}; expected one of {APPS}")
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    fault_tolerant = (
        faults is not None or checkpoint_policy is not None or checkpoint_store is not None
    )
    if fault_tolerant and framework != "flash":
        raise ValueError("fault injection/recovery is only supported on flash")
    explicit_engine = executor != "inline" or cluster is not None
    if explicit_engine and framework != "flash":
        raise ValueError("executor/cluster selection is only supported on flash")
    if executor == "mp" and backend not in (None, "interp"):
        raise ValueError("executor='mp' runs on the interp backend; "
                         f"backend={backend!r} is not supported")
    if faults is not None and faults.has_process_faults and executor != "mp":
        raise FlashUsageError(
            "process-level faults (kill/hang/slow) act on real worker "
            "processes; they require executor='mp' (got "
            f"executor={executor!r}). Use plain 'STEP[:WORKER]' entries "
            "for simulated faults on the inline executor."
        )
    if cluster is not None:
        num_workers = cluster.num_workers
    try:
        with use_tracer(tracer):
            if framework == "flash":
                context = use_backend(backend) if backend is not None else nullcontext()
                analysis_ctx = (
                    use_analysis(analysis) if analysis is not None else nullcontext()
                )
                with context, analysis_ctx:
                    if fault_tolerant:
                        report = _run_flash_with_recovery(
                            app, graph, num_workers, faults,
                            checkpoint_policy, checkpoint_store, max_retries,
                            executor=executor, cluster=cluster,
                        )
                        result = report.result
                        extra = dict(result.extra)
                        extra["recovery"] = report.stats.as_dict()
                        if executor == "mp":
                            extra["distributed"] = result.engine.dist_summary()
                            result.engine.close()
                        return SuiteRun("flash", app, result.engine.metrics,
                                        result.values, extra)
                    if explicit_engine:
                        result, dist = _run_flash_direct(
                            app, graph, num_workers, executor, cluster
                        )
                        extra = dict(result.extra)
                        if dist is not None:
                            extra["distributed"] = dist
                        return SuiteRun("flash", app, result.engine.metrics,
                                        result.values, extra)
                    result = _FLASH_RUNNERS[app](graph, num_workers)
                return SuiteRun("flash", app, result.engine.metrics, result.values, dict(result.extra))
            runner = SUITES[framework].get(app)
            if runner is None:
                return None
            baseline = runner(graph, num_workers=num_workers)
            return SuiteRun(framework, app, baseline.metrics, baseline.values, dict(baseline.extra))
    except InexpressibleError:
        return None


def prepare_graph(app: str, graph: Graph, seed: int = 0) -> Graph:
    """Adapt a dataset to an application's input requirements
    (orientation for SCC, random weights for MSF — §V-A)."""
    if app in WEIGHTED_APPS and not graph.weighted:
        return graph.with_random_weights(seed=seed)
    return graph
