"""Uniform runner used by the benchmark harness: run any of the paper's
14 applications on any of the 5 frameworks and cost the run with the
shared cost model.

FLASH entries follow the paper's reporting: where FLASH has both a basic
and an optimized variant (CC, MM, KC) the *better-costing* variant is
reported, mirroring §V-B ("we also implemented an optimized CC algorithm
... since it performs better on large-diameter graphs", MM uses the
advanced algorithm, etc.).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro import algorithms as A
from repro.baselines.registry import SUITES
from repro.errors import InexpressibleError, ReproError
from repro.graph.graph import Graph
from repro.runtime.vectorized.dispatch import use_backend
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostBreakdown, CostModel
from repro.runtime.metrics import Metrics

#: Table IV application keys, in evaluation order.
APPS: List[str] = [
    "cc", "bfs", "bc", "mis", "mm", "kc", "tc", "gc",
    "scc", "bcc", "lpa", "msf", "rc", "cl",
]

#: Applications that need a directed input graph.
DIRECTED_APPS = {"scc"}

#: Applications that need edge weights.
WEIGHTED_APPS = {"msf"}

FRAMEWORKS: List[str] = ["pregel", "gas", "gemini", "ligra", "flash"]


@dataclass
class SuiteRun:
    """One (framework, app, graph) execution with its accounting."""

    framework: str
    app: str
    metrics: Metrics
    values: Any
    extra: Dict[str, Any]

    def cost(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> CostBreakdown:
        if cluster is None:
            cluster = ClusterSpec(nodes=self.metrics.num_workers, cores_per_node=32)
        return (model or CostModel()).estimate(self.metrics, cluster)

    def seconds(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> float:
        return self.cost(cluster, model).total


def _best_of(graph: Graph, num_workers: int, *variants: Callable) -> Any:
    best = None
    best_cost = None
    for variant in variants:
        result = variant(graph, num_workers=num_workers)
        cost = result.engine.cost().total
        if best_cost is None or cost < best_cost:
            best, best_cost = result, cost
    return best


_FLASH_RUNNERS: Dict[str, Callable] = {
    "cc": lambda g, w: _best_of(g, w, A.cc_basic, A.cc_opt),
    "bfs": lambda g, w: A.bfs(g, root=0, num_workers=w),
    "bc": lambda g, w: A.bc(g, root=0, num_workers=w),
    "mis": lambda g, w: A.mis(g, num_workers=w),
    "mm": lambda g, w: A.mm_opt(g, num_workers=w),
    "kc": lambda g, w: _best_of(g, w, A.kcore_basic, A.kcore_opt),
    "tc": lambda g, w: A.tc(g, num_workers=w),
    "gc": lambda g, w: A.gc(g, num_workers=w),
    "scc": lambda g, w: A.scc(g, num_workers=w),
    "bcc": lambda g, w: A.bcc(g, num_workers=w),
    "lpa": lambda g, w: A.lpa(g, num_workers=w),
    "msf": lambda g, w: A.msf(g, num_workers=w),
    "rc": lambda g, w: A.rc(g, num_workers=w),
    "cl": lambda g, w: A.cl(g, k=4, num_workers=w),
}


def run_app(
    framework: str,
    app: str,
    graph: Graph,
    num_workers: int = 4,
    backend: Optional[str] = None,
) -> Optional[SuiteRun]:
    """Run one application on one framework.

    ``backend`` selects the FLASH execution backend (``interp`` /
    ``vectorized`` / ``auto``); ``None`` keeps the ambient default.
    Baselines always interpret.

    Returns ``None`` when the framework cannot express the application
    (the paper's "—" cells); propagates real failures.
    """
    if app not in APPS:
        raise ValueError(f"unknown app {app!r}; expected one of {APPS}")
    try:
        if framework == "flash":
            context = use_backend(backend) if backend is not None else nullcontext()
            with context:
                result = _FLASH_RUNNERS[app](graph, num_workers)
            return SuiteRun("flash", app, result.engine.metrics, result.values, dict(result.extra))
        runner = SUITES[framework].get(app)
        if runner is None:
            return None
        baseline = runner(graph, num_workers=num_workers)
        return SuiteRun(framework, app, baseline.metrics, baseline.values, dict(baseline.extra))
    except InexpressibleError:
        return None


def prepare_graph(app: str, graph: Graph, seed: int = 0) -> Graph:
    """Adapt a dataset to an application's input requirements
    (orientation for SCC, random weights for MSF — §V-A)."""
    if app in WEIGHTED_APPS and not graph.weighted:
        return graph.with_random_weights(seed=seed)
    return graph
