"""The ``vertexSubset`` type (paper §III-A, §III-C).

A :class:`VertexSubset` is an immutable set of vertex ids tied to an
engine.  It is the "global-perspective data structure supplementing the
perspective of a single vertex": algorithms may hold many subsets at
once, pass them through recursion (e.g. Brandes' BC), and combine them
with the auxiliary set operators (``UNION``, ``MINUS``, ``INTERSECT``,
``ADD``, ``CONTAIN`` — §III-A "the auxiliary operators").
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class VertexSubset:
    """An immutable subset of a graph's vertices."""

    __slots__ = ("_engine", "_ids", "_sorted")

    def __init__(self, engine, ids: Iterable[int]):
        self._engine = engine
        self._ids = frozenset(int(v) for v in ids)
        n = engine.graph.num_vertices
        for v in self._ids:
            if not 0 <= v < n:
                raise ValueError(f"vertex id {v} out of range (|V|={n})")
        self._sorted: List[int] = sorted(self._ids)

    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self._engine

    def size(self) -> int:
        """The paper's ``SIZE(U)`` — a superstep-free global count."""
        return len(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __iter__(self) -> Iterator[int]:
        """Iterate ids in sorted order (deterministic execution)."""
        return iter(self._sorted)

    def __contains__(self, vid: int) -> bool:
        return vid in self._ids

    def ids(self) -> List[int]:
        """Sorted list of member ids."""
        return list(self._sorted)

    # ------------------------------------------------------------------
    # Auxiliary set operators
    # ------------------------------------------------------------------
    def _check_peer(self, other: "VertexSubset") -> None:
        if not isinstance(other, VertexSubset):
            raise TypeError(f"expected VertexSubset, got {type(other).__name__}")
        if other._engine is not self._engine:
            raise ValueError("cannot combine subsets from different engines")

    def union(self, other: "VertexSubset") -> "VertexSubset":
        self._check_peer(other)
        return VertexSubset(self._engine, self._ids | other._ids)

    def minus(self, other: "VertexSubset") -> "VertexSubset":
        self._check_peer(other)
        return VertexSubset(self._engine, self._ids - other._ids)

    def intersect(self, other: "VertexSubset") -> "VertexSubset":
        self._check_peer(other)
        return VertexSubset(self._engine, self._ids & other._ids)

    def add(self, vid: int) -> "VertexSubset":
        """A new subset with ``vid`` added (subsets are immutable)."""
        return VertexSubset(self._engine, self._ids | {int(vid)})

    def contain(self, vid: int) -> bool:
        """The paper's ``CONTAIN`` operator."""
        return int(vid) in self._ids

    # Operator sugar
    __or__ = union
    __sub__ = minus
    __and__ = intersect

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSubset):
            return NotImplemented
        return self._engine is other._engine and self._ids == other._ids

    def __hash__(self) -> int:
        return hash((id(self._engine), self._ids))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        preview = ", ".join(map(str, self._sorted[:8]))
        suffix = ", ..." if len(self._sorted) > 8 else ""
        return f"VertexSubset({{{preview}{suffix}}}, size={len(self._ids)})"
