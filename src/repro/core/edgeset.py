"""Edge sets — including beyond-neighborhood (virtual) edges.

The paper's key extension over Ligra (§III-A, §III-C "communication
beyond neighborhood"): ``EDGEMAP`` takes an explicit edge set ``H`` which
may be the graph's edges ``E``, a derived set, or *virtual* edges that do
not exist in the graph at all:

* ``reverse(E)`` — reversed edges (Brandes' backward phase);
* ``join(E, E)`` — two-hop neighbors (rectangle counting);
* ``join(E, U)`` — edges whose target lies in the subset ``U``;
* ``join(U, p)`` — virtual edges ``u -> u.p`` from each ``u`` in ``U`` to
  the vertex named by its property ``p`` (pointer-jumping in CC-opt);
* ``join(p, U)`` — the reverse, ``u.p -> u``;
* ``join(H, p)`` — an edge set with targets mapped through property ``p``
  (e.g. ``join(join(U, p), p)`` reaches grandparents);
* ``edges_from(fn)`` — arbitrary user-defined targets per source.

Edge sets resolve the *current* property snapshot when a kernel starts
(``prepare``), matching BSP semantics.  ``within_graph`` tells FLASHWARE
whether mirror syncs can be restricted to necessary mirrors or must
broadcast to all partitions (§IV-C, last paragraph).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.subset import VertexSubset
from repro.errors import FlashUsageError


class EdgeSet:
    """Abstract edge set over a graph; concrete sets define enumeration
    in the push direction (``out_targets``) and the pull direction
    (``in_sources``)."""

    #: True when every edge of the set is an edge of the input graph, so
    #: masters only need to sync with *necessary* mirrors.
    within_graph: bool = True

    def prepare(self, engine) -> None:
        """Snapshot any property-derived structure at kernel start."""

    def out_targets(self, engine, s: int) -> Sequence[int]:
        """Targets of edges leaving ``s`` (push/sparse enumeration)."""
        raise NotImplementedError

    def in_sources(self, engine, d: int) -> Sequence[int]:
        """Sources of edges entering ``d`` (pull/dense enumeration)."""
        raise NotImplementedError

    def candidate_targets(self, engine) -> Optional[Iterable[int]]:
        """An optional restriction of the dense-mode target loop; ``None``
        means all vertices must be scanned."""
        return None

    def out_work(self, engine, subset: VertexSubset) -> int:
        """Estimated active-edge count for the density heuristic."""
        return sum(len(self.out_targets(engine, u)) for u in subset)


class BaseEdges(EdgeSet):
    """``E`` — the edges of the input graph."""

    within_graph = True

    def out_targets(self, engine, s: int) -> Sequence[int]:
        return engine.graph.out_neighbors(s)

    def in_sources(self, engine, d: int) -> Sequence[int]:
        return engine.graph.in_neighbors(d)

    def out_work(self, engine, subset: VertexSubset) -> int:
        return sum(engine.graph.out_degree(u) for u in subset)

    def __repr__(self) -> str:
        return "E"


class ReverseEdges(EdgeSet):
    """``reverse(H)`` — every edge flipped."""

    def __init__(self, inner: EdgeSet):
        self.inner = inner
        self.within_graph = inner.within_graph

    def prepare(self, engine) -> None:
        self.inner.prepare(engine)

    def out_targets(self, engine, s: int) -> Sequence[int]:
        return self.inner.in_sources(engine, s)

    def in_sources(self, engine, d: int) -> Sequence[int]:
        return self.inner.out_targets(engine, d)

    def __repr__(self) -> str:
        return f"reverse({self.inner!r})"


class TargetFilteredEdges(EdgeSet):
    """``join(H, U)`` — edges of ``H`` whose target lies in ``U``."""

    def __init__(self, inner: EdgeSet, subset: VertexSubset):
        self.inner = inner
        self.subset = subset
        self.within_graph = inner.within_graph

    def prepare(self, engine) -> None:
        self.inner.prepare(engine)

    def out_targets(self, engine, s: int) -> List[int]:
        return [d for d in self.inner.out_targets(engine, s) if d in self.subset]

    def in_sources(self, engine, d: int) -> Sequence[int]:
        if d not in self.subset:
            return ()
        return self.inner.in_sources(engine, d)

    def candidate_targets(self, engine) -> Iterable[int]:
        return self.subset

    def out_work(self, engine, subset: VertexSubset) -> int:
        # Active work is bounded by the in-edges of the target filter —
        # far cheaper to estimate than scanning every source.
        return sum(len(self.inner.in_sources(engine, t)) for t in self.subset)

    def __repr__(self) -> str:
        return f"join({self.inner!r}, U[{self.subset.size()}])"


class SourceFilteredEdges(EdgeSet):
    """``join(U, H)`` — edges of ``H`` whose source lies in ``U``."""

    def __init__(self, subset: VertexSubset, inner: EdgeSet):
        self.inner = inner
        self.subset = subset
        self.within_graph = inner.within_graph

    def prepare(self, engine) -> None:
        self.inner.prepare(engine)

    def out_targets(self, engine, s: int) -> Sequence[int]:
        if s not in self.subset:
            return ()
        return self.inner.out_targets(engine, s)

    def in_sources(self, engine, d: int) -> List[int]:
        return [s for s in self.inner.in_sources(engine, d) if s in self.subset]

    def candidate_targets(self, engine) -> Optional[Iterable[int]]:
        return self.inner.candidate_targets(engine)

    def __repr__(self) -> str:
        return f"join(U[{self.subset.size()}], {self.inner!r})"


class TwoHopEdges(EdgeSet):
    """``join(E, E)`` — virtual edges to two-hop neighbors."""

    within_graph = False

    def out_targets(self, engine, s: int) -> List[int]:
        g = engine.graph
        seen = set()
        for mid in g.out_neighbors(s):
            for t in g.out_neighbors(mid):
                if t != s:
                    seen.add(int(t))
        return sorted(seen)

    def in_sources(self, engine, d: int) -> List[int]:
        g = engine.graph
        seen = set()
        for mid in g.in_neighbors(d):
            for s in g.in_neighbors(mid):
                if s != d:
                    seen.add(int(s))
        return sorted(seen)

    def out_work(self, engine, subset: VertexSubset) -> int:
        g = engine.graph
        return sum(
            sum(g.out_degree(mid) for mid in g.out_neighbors(u)) for u in subset
        )

    def __repr__(self) -> str:
        return "join(E, E)"


class PropertyEdges(EdgeSet):
    """``join(U, p)`` — virtual edges ``u -> u.p`` for ``u`` in ``U``.

    The property value names the target vertex id; values outside
    ``[0, |V|)`` (e.g. an ``INF`` sentinel) produce no edge.
    """

    within_graph = False

    def __init__(self, subset: VertexSubset, prop: str):
        self.subset = subset
        self.prop = prop
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}

    def prepare(self, engine) -> None:
        n = engine.graph.num_vertices
        state = engine.flashware.state
        self._out = {}
        self._in = {}
        for u in self.subset:
            t = state.get(u, self.prop)
            if isinstance(t, bool) or not isinstance(t, int):
                continue
            if 0 <= t < n:
                self._out.setdefault(u, []).append(t)
                self._in.setdefault(t, []).append(u)

    def out_targets(self, engine, s: int) -> Sequence[int]:
        return self._out.get(s, ())

    def in_sources(self, engine, d: int) -> Sequence[int]:
        return self._in.get(d, ())

    def candidate_targets(self, engine) -> Iterable[int]:
        return sorted(self._in)

    def out_work(self, engine, subset: VertexSubset) -> int:
        return subset.size()

    def __repr__(self) -> str:
        return f"join(U[{self.subset.size()}], {self.prop!r})"


class MappedTargetEdges(EdgeSet):
    """``join(H, p)`` — edges of ``H`` with targets mapped through ``p``
    (so ``join(join(U, p), p)`` reaches ``u.p.p``)."""

    within_graph = False

    def __init__(self, inner: EdgeSet, prop: str):
        self.inner = inner
        self.prop = prop
        self._in: Optional[Dict[int, List[int]]] = None

    def prepare(self, engine) -> None:
        self.inner.prepare(engine)
        self._in = None

    def _map(self, engine, d: int) -> Optional[int]:
        t = engine.flashware.state.get(d, self.prop)
        if isinstance(t, bool) or not isinstance(t, int):
            return None
        if 0 <= t < engine.graph.num_vertices:
            return t
        return None

    def out_targets(self, engine, s: int) -> List[int]:
        out = []
        for d in self.inner.out_targets(engine, s):
            t = self._map(engine, d)
            if t is not None:
                out.append(t)
        return out

    def in_sources(self, engine, d: int) -> Sequence[int]:
        if self._in is None:
            # Build the reverse index lazily by a full scan; only the dense
            # kernel needs it and only for small virtual sets in practice.
            self._in = {}
            for s in range(engine.graph.num_vertices):
                for t in self.out_targets(engine, s):
                    self._in.setdefault(t, []).append(s)
        return self._in.get(d, ())

    def __repr__(self) -> str:
        return f"join({self.inner!r}, {self.prop!r})"


class FunctionEdges(EdgeSet):
    """``edges_from(fn)`` — arbitrary user-defined edges: ``fn(engine, s)``
    (or ``fn(s)``) yields the target ids for source ``s``."""

    within_graph = False

    def __init__(self, fn: Callable, name: str = "user"):
        self.fn = fn
        self.name = name
        self._in: Optional[Dict[int, List[int]]] = None

    def prepare(self, engine) -> None:
        self._in = None

    def out_targets(self, engine, s: int) -> List[int]:
        try:
            targets = self.fn(engine, s)
        except TypeError:
            targets = self.fn(s)
        return [int(t) for t in targets]

    def in_sources(self, engine, d: int) -> Sequence[int]:
        if self._in is None:
            self._in = {}
            for s in range(engine.graph.num_vertices):
                for t in self.out_targets(engine, s):
                    self._in.setdefault(t, []).append(s)
        return self._in.get(d, ())

    def __repr__(self) -> str:
        return f"edges_from({self.name})"


# ----------------------------------------------------------------------
# Constructors mirroring the paper's notation
# ----------------------------------------------------------------------
def reverse(edges: EdgeSet) -> EdgeSet:
    """``reverse(E)`` — the edge set with directions flipped."""
    if isinstance(edges, ReverseEdges):
        return edges.inner
    return ReverseEdges(edges)


def join(
    a: Union[EdgeSet, VertexSubset, str],
    b: Union[EdgeSet, VertexSubset, str],
) -> EdgeSet:
    """The paper's ``join`` operator, dispatching on argument types.

    ``join(E, E)`` → two-hop; ``join(E, U)`` → target filter;
    ``join(U, E)`` → source filter; ``join(U, p)`` / ``join(p, U)`` →
    virtual parent-pointer edges; ``join(H, p)`` → mapped targets.
    """
    if isinstance(a, EdgeSet) and isinstance(b, EdgeSet):
        if isinstance(a, BaseEdges) and isinstance(b, BaseEdges):
            return TwoHopEdges()
        raise FlashUsageError("join of two edge sets is only defined for join(E, E)")
    if isinstance(a, EdgeSet) and isinstance(b, VertexSubset):
        return TargetFilteredEdges(a, b)
    if isinstance(a, VertexSubset) and isinstance(b, EdgeSet):
        return SourceFilteredEdges(a, b)
    if isinstance(a, VertexSubset) and isinstance(b, str):
        return PropertyEdges(a, b)
    if isinstance(a, str) and isinstance(b, VertexSubset):
        return ReverseEdges(PropertyEdges(b, a))
    if isinstance(a, EdgeSet) and isinstance(b, str):
        return MappedTargetEdges(a, b)
    raise FlashUsageError(
        f"join() cannot combine {type(a).__name__} and {type(b).__name__}"
    )


def edges_from(fn: Callable, name: str = "user") -> EdgeSet:
    """An arbitrary user-defined (virtual) edge set."""
    return FunctionEdges(fn, name)
