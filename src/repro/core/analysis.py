"""Critical-property analysis — the code generator's static analysis
(paper §IV-B/§IV-C, Table II).

The real FLASH compiler inspects the generated code to classify every
property access as ``get``/``put`` on the ``source``/``target`` of each
kernel, then applies Table II: a property is *critical* (must be synced
to mirrors) iff it is

* ``get`` as the **source** property of an ``EDGEMAPDENSE``, or
* ``get``/``put`` as the **target** property of an ``EDGEMAPSPARSE``.

This module is the engine-side dispatcher between the two reproductions
of that analysis:

``static`` (the default)
    The ahead-of-time pass (:mod:`repro.analysis.staticpass`): user
    functions are recovered from source and analyzed over **all**
    control-flow branches, so the critical set is complete before the
    kernel's first superstep.  When a kernel resists analysis (no
    recoverable source, a dynamic access the AST pass cannot resolve)
    the runtime tracer below takes over for that kernel and the engine
    records a diagnostic.

``trace``
    The original runtime approximation: before a kernel's main loop, its
    user functions run once against recording views on a sample edge and
    the recorded events are classified by the same table.  Writes during
    tracing are discarded, and tracing charges no ops (analysis is not
    user work).  Branch-dependent accesses may be missed on the sample —
    the limitation any single-path abstract interpretation has; the
    engine's ``get`` handle additionally promotes properties read
    remotely at runtime, see :meth:`repro.core.engine.FlashEngine.get`.

``check``
    Both: the static sets are applied, then the trace runs as a
    cross-check oracle.  A sound static pass covers everything the trace
    observes; anything the trace sees that the static pass missed is
    surfaced as an engine diagnostic.

``compile``
    The static kernel compiler (:mod:`repro.analysis.compile`): the
    ahead-of-time pass runs exactly as under ``static``, and on top of
    it (1) analyzable F/M/C/R functions are compiled into vectorized
    kernel specs automatically (per-kernel fallback to interp when any
    slot resists), and (2) the per-kernel read/write sets feed a
    :class:`~repro.analysis.compile.commplan.CommunicationPlan` that the
    mp executor uses to withhold mirror deltas no kernel can read.

``off``
    No analysis (``FlashEngine(auto_analyze=False)``) — nothing is ever
    marked critical.

The mode is per-engine (``FlashEngine(analysis=...)``), defaulting to
the ambient mode set with :func:`use_analysis` — mirroring how nested
engines inherit the ambient backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.edgeset import EdgeSet
from repro.core.subset import VertexSubset
from repro.core.vertex import TracingView

Event = Tuple[str, str, str]  # (op, role, property)

# ---------------------------------------------------------------------------
# Analysis-mode selection (ambient default + per-engine override)
# ---------------------------------------------------------------------------
ANALYSIS_MODES = ("static", "trace", "check", "compile", "off")

#: Modes that run the ahead-of-time pass before the kernel executes.
_STATIC_MODES = ("static", "check", "compile")

_default_analysis = "static"
_default_remote_promotion = True


def validate_analysis(name: str) -> str:
    if name not in ANALYSIS_MODES:
        raise ValueError(
            f"unknown analysis mode {name!r}; expected one of "
            + ", ".join(ANALYSIS_MODES)
        )
    return name


def default_analysis() -> str:
    """The analysis mode new engines use when none is passed explicitly."""
    return _default_analysis


def default_remote_promotion() -> bool:
    """Whether new engines promote properties read through ``engine.get``
    to critical at runtime (the safety net a complete static pass makes
    redundant)."""
    return _default_remote_promotion


@contextmanager
def use_analysis(
    name: str, remote_promotion: Optional[bool] = None
) -> Iterator[str]:
    """Temporarily change the default analysis mode for engines
    constructed inside the ``with`` block (nested engines included —
    same ambient pattern as
    :func:`repro.runtime.vectorized.dispatch.use_backend`).

    ``remote_promotion=False`` additionally disables the runtime
    ``engine.get`` promotion fallback for those engines — the setting
    the static-parity tests use to prove the ahead-of-time sets are
    complete on their own."""
    global _default_analysis, _default_remote_promotion
    validate_analysis(name)
    prev = _default_analysis
    prev_promo = _default_remote_promotion
    _default_analysis = name
    if remote_promotion is not None:
        _default_remote_promotion = remote_promotion
    try:
        yield name
    finally:
        _default_analysis = prev
        _default_remote_promotion = prev_promo


# ---------------------------------------------------------------------------
# Table II over runtime traces
# ---------------------------------------------------------------------------
def classify_events(kind: str, events: Iterable[Event]) -> Tuple[Set[str], Set[str]]:
    """Apply Table II to a trace.

    Returns ``(critical, seen)`` — the properties decided critical for
    this kernel kind, and every property touched at all.
    """
    critical: Set[str] = set()
    seen: Set[str] = set()
    for op, role, prop in events:
        seen.add(prop)
        if kind == "edge_map_dense" and op == "get" and role == "source":
            critical.add(prop)
        elif kind == "edge_map_sparse" and role == "target":
            critical.add(prop)
    return critical, seen


def _run_traced(fn: Optional[Callable], args: tuple) -> None:
    if fn is None:
        return
    try:
        fn(*args)
    except Exception:
        # A trace may legitimately blow up (e.g. arithmetic on a sentinel
        # value); whatever events were recorded before the failure still
        # feed the classification.
        pass


# ---------------------------------------------------------------------------
# The static pass (lazy import: repro.analysis.staticpass pulls in the
# engine for get-view detection, so the dependency must stay one-way at
# import time)
# ---------------------------------------------------------------------------
_staticpass = None


def _get_staticpass():
    global _staticpass
    if _staticpass is None:
        from repro.analysis import staticpass

        _staticpass = staticpass
    return _staticpass


def _apply_static(
    engine, kind: str, label: str, F=None, M=None, C=None, R=None, spec=None
):
    """Run the ahead-of-time pass for one kernel and register its verdict
    with FLASHWARE.  Returns the classification, or ``None`` when the
    analyzer itself failed (never breaks execution)."""
    sp = _get_staticpass()
    try:
        classification = sp.analyze_kernel(kind, F=F, M=M, C=C, R=R)
    except Exception as exc:  # analyzer defect — degrade to tracing
        engine.note_diagnostic(
            f"static analyzer error on {kind}:{label or '-'}: {exc!r}; "
            "falling back to sample tracing"
        )
        return None
    fw = engine.flashware
    # Properties the program has not declared (yet) cannot be marked;
    # the analysis re-applies on the kernel's next superstep, so a
    # property declared later is picked up then — the same timing the
    # tracer has (it cannot observe an undeclared property either).
    fw.mark_critical(
        p for p in classification.critical if fw.state.has_property(p)
    )
    fw.note_analyzed(classification.seen)
    if not classification.complete:
        engine.note_diagnostic(
            f"static analysis incomplete for {kind}:{label or '-'} "
            f"(unresolved roles: {sorted(classification.access.unknown_roles) or 'n/a'}); "
            "sample tracing takes over for this kernel"
        )
    if sp.program.capturing():
        sp.program.record(engine, kind, label, classification, spec=spec)
    return classification


def _observe_plan(engine, kind: str, label: str, static_res, virtual: bool) -> None:
    """Fold one kernel registration into the engine's communication plan
    (``analysis="compile"`` only) and let a distributed flashware re-ship
    columns whose deltas were withheld under a now-stale plan."""
    plan = getattr(engine, "comm_plan", None)
    if plan is None:
        return
    plan.observe(kind, label, static_res, virtual=virtual)
    hook = getattr(engine.flashware, "sync_comm_plan", None)
    if hook is not None:
        hook()


def validate_spec(engine, kind: str, spec, classification) -> None:
    """Cross-check a vectorized spec's declared access sets against the
    static classification (diagnostics only, never changes execution)."""
    if spec is None or classification is None or not classification.complete:
        return
    sp = _get_staticpass()
    for message in sp.check_spec(kind, spec, classification):
        engine.note_diagnostic(f"spec mismatch in {kind}: {message}")


# ---------------------------------------------------------------------------
# Engine entry points (one call per kernel superstep)
# ---------------------------------------------------------------------------
def analyze_vertex_map(engine, subset: VertexSubset, F, M, label: str = "", spec=None):
    """Analyze a VERTEXMAP call.  Per Table II, VERTEXMAP accesses are
    never critical; only ``engine.get`` reads inside the map (found
    statically, or promoted at runtime) can mark anything.  Returns the
    static classification when one was computed."""
    mode = engine.analysis
    if mode == "off":
        return None
    static_res = None
    if mode in _STATIC_MODES:
        static_res = _apply_static(engine, "vertex_map", label, F=F, M=M, spec=spec)
        _observe_plan(engine, "vertex_map", label, static_res, virtual=False)
        if (
            mode in ("static", "compile")
            and static_res is not None
            and static_res.complete
        ):
            return static_res

    sample = next(iter(subset), None)
    if sample is None:
        return static_res
    events: List[Event] = []
    v = TracingView(engine, sample, "self", events)
    fw = engine.flashware
    with fw.suppressed_ops():
        _run_traced(F, (v,))
        _run_traced(M, (v,))
    _, seen = classify_events("vertex_map", events)
    fw.note_analyzed(seen)
    if mode == "check" and static_res is not None:
        _cross_check(engine, static_res, set(), seen, label)
    return static_res


def analyze_edge_map(
    engine,
    kind: str,
    subset: VertexSubset,
    edges: EdgeSet,
    F,
    M,
    C,
    R,
    label: str = "",
    spec=None,
):
    """Analyze an EDGEMAP call and mark the critical properties before
    the kernel runs.  Returns the static classification when one was
    computed."""
    mode = engine.analysis
    if mode == "off":
        return None
    static_res = None
    if mode in _STATIC_MODES:
        static_res = _apply_static(engine, kind, label, F=F, M=M, C=C, R=R, spec=spec)
        _observe_plan(
            engine, kind, label, static_res, virtual=not edges.within_graph
        )
        if (
            mode in ("static", "compile")
            and static_res is not None
            and static_res.complete
        ):
            return static_res

    sample = None
    for u in subset:
        targets = edges.out_targets(engine, u)
        if len(targets):
            sample = (u, int(targets[0]))
            break
    if sample is None:
        # No active edge anywhere in the subset: a role-faithful trace is
        # impossible.  (The old fallback traced a (first, first) self-loop,
        # conflating the source and target roles — in a sparse kernel that
        # promoted source-read properties to critical and over-synced.)
        return static_res

    events: List[Event] = []
    src = TracingView(engine, sample[0], "source", events)
    dst = TracingView(engine, sample[1], "target", events)
    tmp = TracingView(engine, sample[1], "target", events)
    fw = engine.flashware
    with fw.suppressed_ops():
        _run_traced(C, (dst,))
        _run_traced(F, (src, dst))
        _run_traced(M, (src, dst))
        _run_traced(R, (tmp, dst))
    critical, seen = classify_events(kind, events)
    fw.mark_critical(p for p in critical if fw.state.has_property(p))
    fw.note_analyzed(seen)
    if mode == "check" and static_res is not None:
        _cross_check(engine, static_res, critical, seen, label)
    return static_res


def _cross_check(engine, static_res, traced_critical, traced_seen, label) -> None:
    """Under ``analysis="check"``: compare trace oracle vs static pass
    and surface soundness disagreements (trace saw something static
    missed) as diagnostics."""
    sp = _get_staticpass()
    disagreement = sp.cross_check(static_res, traced_critical, traced_seen)
    if disagreement is not None:
        engine.note_diagnostic(
            f"static/trace disagreement on {label or static_res.kind}: {disagreement}"
        )
