"""Critical-property analysis — the code generator's static analysis
(paper §IV-B/§IV-C, Table II).

The real FLASH compiler inspects the generated code to classify every
property access as ``get``/``put`` on the ``source``/``target`` of each
kernel, then applies Table II: a property is *critical* (must be synced
to mirrors) iff it is

* ``get`` as the **source** property of an ``EDGEMAPDENSE``, or
* ``get``/``put`` as the **target** property of an ``EDGEMAPSPARSE``.

Since our kernels interpret user functions directly, we reproduce the
analysis by *tracing*: before a kernel's main loop, its user functions
run once against recording views on a sample edge, and the recorded
events are classified by the same table.  Writes during tracing are
discarded.  (Branch-dependent accesses may be missed on the sample —
the same limitation any single-path abstract interpretation has; the
engine's ``get`` handle additionally promotes properties read remotely
at runtime, see :meth:`repro.core.engine.FlashEngine.get`.)
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.core.edgeset import EdgeSet
from repro.core.subset import VertexSubset
from repro.core.vertex import TracingView

Event = Tuple[str, str, str]  # (op, role, property)


def classify_events(kind: str, events: Iterable[Event]) -> Tuple[Set[str], Set[str]]:
    """Apply Table II to a trace.

    Returns ``(critical, seen)`` — the properties decided critical for
    this kernel kind, and every property touched at all.
    """
    critical: Set[str] = set()
    seen: Set[str] = set()
    for op, role, prop in events:
        seen.add(prop)
        if kind == "edge_map_dense" and op == "get" and role == "source":
            critical.add(prop)
        elif kind == "edge_map_sparse" and role == "target":
            critical.add(prop)
    return critical, seen


def _run_traced(fn: Optional[Callable], args: tuple) -> None:
    if fn is None:
        return
    try:
        fn(*args)
    except Exception:
        # A trace may legitimately blow up (e.g. arithmetic on a sentinel
        # value); whatever events were recorded before the failure still
        # feed the classification.
        pass


def analyze_vertex_map(engine, subset: VertexSubset, F, M) -> None:
    """Trace a VERTEXMAP call.  Per Table II, VERTEXMAP accesses are never
    critical; we only record which properties the program touches."""
    sample = next(iter(subset), None)
    if sample is None:
        return
    events: List[Event] = []
    v = TracingView(engine, sample, "self", events)
    _run_traced(F, (v,))
    _run_traced(M, (v,))
    _, seen = classify_events("vertex_map", events)
    engine.flashware.note_analyzed(seen)


def analyze_edge_map(engine, kind: str, subset: VertexSubset, edges: EdgeSet, F, M, C, R) -> None:
    """Trace an EDGEMAP call on a sample active edge and mark the critical
    properties before the kernel runs."""
    sample = None
    for u in itertools.islice(subset, 8):
        targets = edges.out_targets(engine, u)
        if len(targets):
            sample = (u, int(targets[0]))
            break
    if sample is None:
        first = next(iter(subset), None)
        if first is None:
            return
        sample = (first, first)

    events: List[Event] = []
    src = TracingView(engine, sample[0], "source", events)
    dst = TracingView(engine, sample[1], "target", events)
    tmp = TracingView(engine, sample[1], "target", events)
    _run_traced(C, (dst,))
    _run_traced(F, (src, dst))
    _run_traced(M, (src, dst))
    _run_traced(R, (tmp, dst))
    critical, seen = classify_events(kind, events)
    engine.flashware.mark_critical(critical)
    engine.flashware.note_analyzed(seen)
