"""The FLASH engine: primitives bound to a graph and its FLASHWARE.

A :class:`FlashEngine` owns one graph, its vertex properties, and a
:class:`~repro.runtime.flashware.Flashware` middleware instance.  It
exposes the paper's primary functions (§III-A) as methods:

* ``size(U)``
* ``vertex_map(U, F, M)``
* ``edge_map(U, H, F, M, C, R)`` — adaptively dense or sparse
* ``edge_map_dense(U, H, F, M, C)`` — the pull kernel (Algorithm 5)
* ``edge_map_sparse(U, H, F, M, C, R)`` — the push kernel (Algorithm 6)

plus the auxiliary pieces: ``V``/``E`` accessors, subset construction,
the FLASHWARE ``get`` for beyond-neighborhood reads, a ``collect``
gather (the paper's ``REDUCE`` auxiliary used by MSF/BCC), and DSU
helpers.  Every primitive call is one BSP superstep recorded in
``engine.metrics``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.analysis import (
    analyze_edge_map,
    analyze_vertex_map,
    default_analysis,
    default_remote_promotion,
    validate_analysis,
    validate_spec,
)
from repro.core.dsu import DSU
from repro.core.primitives import fn_label
from repro.core.edgeset import BaseEdges, EdgeSet
from repro.core.subset import VertexSubset
from repro.core.vertex import RESERVED_ATTRIBUTES, VertexView, WorkingView
from repro.errors import FlashUsageError
from repro.graph.graph import Graph
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostBreakdown, CostModel
from repro.runtime.flashware import Flashware, FlashwareOptions
from repro.runtime.metrics import Metrics
from repro.runtime.oocore import kernels as _ooc
from repro.runtime.tracing import Tracer
from repro.runtime.vectorized import kernels as _vec
from repro.runtime.vectorized.dispatch import default_backend, validate_backend
from repro.runtime.vectorized.specs import EdgeMapSpec, VertexMapSpec

VertexFn = Callable[..., Any]


class _TracedDSU(DSU):
    """DSU variant handed out by ``engine.dsu()`` under an active
    tracer: each successful ``union`` emits a ``dsu_union`` instant so
    union-find work (BCC, MSF) shows up on the trace timeline."""

    __slots__ = ("_tracer",)

    def __init__(self, n: int, tracer: Tracer):
        super().__init__(n)
        self._tracer = tracer

    def union(self, x: int, y: int) -> bool:
        merged = super().union(x, y)
        if merged:
            self._tracer.instant(
                "dsu_union", "dsu", x=int(x), y=int(y),
                components=self.num_components,
            )
        return merged


class _RemoteGetView(VertexView):
    """View returned by ``engine.get``: reading a property through it can
    touch an arbitrary (possibly remote) vertex, so the property must be
    kept consistent on mirrors — it is promoted to critical on first use
    (the ahead-of-time code generator would reach the same verdict from
    the ``get`` call site).

    The static pass (:mod:`repro.analysis.staticpass`) reaches the same
    verdict ahead of time for ``get`` calls inside kernel user functions,
    so under ``analysis="static"`` this runtime promotion is a redundant
    safety net; ``FlashEngine(remote_promotion=False)`` disables it to
    prove exactly that (see ``tests/test_static_parity.py``)."""

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        value = super().__getattr__(name)
        engine = self._engine
        if engine.remote_promotion:
            fw = engine.flashware
            if not fw.is_critical(name) and fw.state.has_property(name):
                fw.mark_critical([name])
        return value


class FlashEngine:
    """Execution engine for FLASH programs over one graph."""

    def __init__(
        self,
        graph: Graph,
        num_workers: int = 4,
        options: Optional[FlashwareOptions] = None,
        dense_threshold: Optional[int] = None,
        partition_strategy: str = "hash",
        auto_analyze: bool = True,
        backend: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        analysis: Optional[str] = None,
        remote_promotion: Optional[bool] = None,
        cluster: Optional[ClusterSpec] = None,
        executor: str = "inline",
        oocore_budget: Optional[int] = None,
        oocore_interval: Optional[int] = None,
        oocore_dir: Optional[str] = None,
    ):
        self.graph = graph
        if cluster is not None:
            num_workers = cluster.num_workers
        if executor not in ("inline", "mp"):
            raise FlashUsageError(
                f"unknown executor {executor!r}: expected 'inline' (simulated "
                f"single-process run) or 'mp' (real multi-process execution)"
            )
        if executor == "mp":
            if num_workers < 2:
                raise FlashUsageError(
                    "executor='mp' needs at least 2 workers: a ClusterSpec with "
                    "nodes=1 (or num_workers=1) has no partitions to distribute "
                    "over — use executor='inline' for single-process runs"
                )
            if backend is not None and backend != "interp":
                raise FlashUsageError(
                    "executor='mp' runs the interpreted kernels on the worker "
                    "processes; backend must be 'interp' (or omitted)"
                )
            backend = "interp"
        self.executor = executor
        if backend is None:
            backend = default_backend()
        self.backend = validate_backend(backend)
        self._vectorize = backend in ("vectorized", "auto")
        self._oocore = backend == "oocore"
        # Columnar backends share typed state and spec-driven dispatch;
        # they differ only in where the arcs live (RAM vs block shards).
        self._columnar = self._vectorize or self._oocore
        if executor == "mp":
            from repro.runtime.distributed.executor import DistributedFlashware

            self.flashware: Flashware = DistributedFlashware(
                graph,
                num_workers,
                options=options,
                partition_strategy=partition_strategy,
            )
        else:
            self.flashware = Flashware(
                graph,
                num_workers,
                options=options,
                partition_strategy=partition_strategy,
                typed_state=self._columnar,
            )
        self._dist = getattr(self.flashware, "session", None)
        # An explicit tracer overrides the ambient one the Flashware
        # picked up (see repro.runtime.tracing.use_tracer).
        if tracer is not None:
            self.flashware.tracer = tracer
        # The API call a delegating primitive (adaptive EDGEMAP) is
        # issuing the next superstep on behalf of — trace attribution.
        self._issuer: Optional[str] = None
        # Ligra's heuristic: go dense when active work exceeds |arcs| / 20.
        if dense_threshold is None:
            dense_threshold = max(graph.num_arcs // 20, 1)
        self.dense_threshold = dense_threshold
        self.auto_analyze = auto_analyze
        #: How critical properties are inferred: ``static`` (ahead-of-time
        #: AST pass, the default), ``trace`` (runtime sample tracing),
        #: ``check`` (static + trace oracle cross-check) or ``off``.
        #: ``auto_analyze=False`` forces ``off`` (back-compat switch).
        if not auto_analyze:
            self.analysis = "off"
        elif analysis is not None:
            self.analysis = validate_analysis(analysis)
        else:
            self.analysis = default_analysis()
        #: Whether ``engine.get`` promotes properties to critical on
        #: first remote read (the runtime safety net the static pass
        #: makes redundant for analyzable programs).  ``None`` inherits
        #: the ambient default (see :func:`use_analysis`).
        if remote_promotion is None:
            remote_promotion = default_remote_promotion()
        self.remote_promotion = remote_promotion
        #: The static kernel compiler's outputs (``analysis="compile"``):
        #: per-property sync scopes consumed by the mp executor, and the
        #: per-kernel dispatch decisions for the ``repro plan`` artifact.
        self.comm_plan = None
        self.kernel_plan: Dict[str, Dict[str, Any]] = {}
        #: ``check`` switch for the compile mode's cross-validation: when
        #: set, synthesized specs *replace* hand-written ones so the two
        #: can be compared bit-identically.
        self._synth_force = False
        if self.analysis == "compile":
            from repro.analysis.compile.commplan import CommunicationPlan
            from repro.analysis.compile.synthesize import synthesis_forced

            self.comm_plan = CommunicationPlan()
            self.flashware.comm_plan = self.comm_plan
            self._synth_force = synthesis_forced()
        #: Analysis diagnostics: static fallbacks, ``check``-mode
        #: disagreements, vectorized-spec access mismatches.
        self.diagnostics: List[str] = []
        self._diagnostic_keys: Set[str] = set()
        self._E = BaseEdges()
        self._owner = self.flashware.partition.owner_of
        self._out_degree_cache: Optional[np.ndarray] = None
        self._closed = False
        #: Out-of-core runtime (block store + scheduler + context); only
        #: built for ``backend="oocore"``, released by :meth:`close`.
        self._ooc = None
        if self._oocore:
            from repro.runtime.oocore.runtime import OocoreRuntime

            self._ooc = OocoreRuntime(
                self,
                budget=oocore_budget,
                interval=oocore_interval,
                directory=oocore_dir,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.flashware.partition.num_partitions

    @property
    def metrics(self) -> Metrics:
        return self.flashware.metrics

    @property
    def tracer(self) -> Tracer:
        return self.flashware.tracer

    @property
    def V(self) -> VertexSubset:
        """A subset containing every vertex."""
        return VertexSubset(self, range(self.graph.num_vertices))

    @property
    def E(self) -> EdgeSet:
        """The graph's edge set."""
        return self._E

    def subset(self, ids: Iterable[int]) -> VertexSubset:
        """Build a vertex subset from ids."""
        return VertexSubset(self, ids)

    def empty(self) -> VertexSubset:
        return VertexSubset(self, ())

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    def add_property(
        self,
        name: str,
        default: Any = None,
        factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        """Declare a vertex property visible as ``v.<name>`` in user
        functions.  Mutable defaults are copied per vertex."""
        if name in RESERVED_ATTRIBUTES:
            raise FlashUsageError(f"{name!r} is a reserved vertex attribute")
        self.flashware.state.add_property(name, default=default, factory=factory)

    def values(self, name: str) -> List[Any]:
        """A copy of the current column for property ``name``, always as
        a plain Python list of Python values (backend-independent)."""
        column = self.flashware.state.column(name)
        if isinstance(column, np.ndarray):
            return column.tolist()
        return list(column)

    def drop_property(self, name: str) -> None:
        """Remove a property (lets two algorithms share one engine when
        their property names collide)."""
        self.flashware.state.remove_property(name)

    def value(self, vid: int, name: str) -> Any:
        return self.flashware.state.get(vid, name)

    def get(self, vid: int) -> VertexView:
        """FLASHWARE's ``get``: a read-only view of any vertex's current
        state (usable from anywhere, e.g. inside a VERTEXMAP that walks
        other vertices' neighbor lists — CL, BCC)."""
        return _RemoteGetView(self, vid)

    def charge(self, vid: int, ops: int) -> None:
        """Charge extra compute work to the worker mastering ``vid`` —
        used by algorithms whose user functions do more than O(1) work
        per invocation (set intersections in TC/RC/CL, local sorts in
        MSF), so the cost model sees the real per-worker load."""
        self.flashware.charge_ops(self._owner(vid), ops)

    def note_diagnostic(self, message: str) -> None:
        """Record an analysis diagnostic (deduplicated — kernels re-run
        their analysis every superstep) and forward it to any active
        program capture (``repro lint`` collection)."""
        if message in self._diagnostic_keys:
            return
        self._diagnostic_keys.add(message)
        self.diagnostics.append(message)
        from repro.analysis.staticpass import program as _program

        _program.record_diagnostic(message)

    # ------------------------------------------------------------------
    # Static kernel compiler (analysis="compile")
    # ------------------------------------------------------------------
    def _compile_vertex_spec(self, spec, F, M):
        """Under ``analysis="compile"`` on a vectorizing backend, fill a
        missing spec (or, under ``_synth_force``, replace the hand one)
        with a synthesized spec.  Returns ``(spec, origin)`` where origin
        is ``"hand"``, ``"synthesized"`` or ``None`` (interp)."""
        if self.analysis != "compile" or not self._columnar:
            return spec, ("hand" if spec is not None else None)
        if spec is not None and not self._synth_force:
            return spec, "hand"
        from repro.analysis.compile.synthesize import synthesize_vertex_spec

        synth = synthesize_vertex_spec(F, M)
        if synth is not None:
            return synth, "synthesized"
        return spec, ("hand" if spec is not None else None)

    def _compile_edge_spec(self, kind, spec, edges, F, M, C, R):
        """Edge-kernel counterpart of :meth:`_compile_vertex_spec`.
        Synthesis only applies to the plain edge set ``E`` — constructed
        edge sets never dispatch vectorized anyway."""
        if self.analysis != "compile" or not self._columnar:
            return spec, ("hand" if spec is not None else None)
        if spec is not None and not self._synth_force:
            return spec, "hand"
        if type(edges) is not BaseEdges:
            return spec, ("hand" if spec is not None else None)
        from repro.analysis.compile.synthesize import synthesize_edge_spec

        synth = synthesize_edge_spec(kind, F, M, C, R)
        if synth is not None:
            return synth, "synthesized"
        return spec, ("hand" if spec is not None else None)

    def _note_plan(self, kind, label, origin, spec, dispatched) -> None:
        """Record one kernel's dispatch decision for the plan artifact
        (``repro plan`` / ``dist_summary``); adaptive kernels may visit
        both modes, so ``dispatched`` accumulates."""
        if self.analysis != "compile":
            return
        key = f"{kind}:{label or '-'}"
        entry = self.kernel_plan.get(key)
        if entry is None:
            writes: List[str] = []
            if spec is not None:
                writes = sorted(spec.declared_access()["writes"])
            self.kernel_plan[key] = {
                "kind": kind,
                "label": label or "-",
                "origin": origin,
                "dispatched": bool(dispatched),
                "writes": writes,
            }
        else:
            entry["dispatched"] = entry["dispatched"] or bool(dispatched)
            if entry["origin"] is None and origin is not None:
                entry["origin"] = origin
                if spec is not None:
                    entry["writes"] = sorted(spec.declared_access()["writes"])
        from repro.analysis.compile import plan as _plan

        if _plan.capturing():
            _plan.note_engine(self)

    # ------------------------------------------------------------------
    # SIZE
    # ------------------------------------------------------------------
    def size(self, subset: VertexSubset) -> int:
        """``SIZE(U)``."""
        return subset.size()

    # ------------------------------------------------------------------
    # VERTEXMAP (Algorithm 1)
    # ------------------------------------------------------------------
    def vertex_map(
        self,
        subset: VertexSubset,
        F: Optional[VertexFn] = None,
        M: Optional[VertexFn] = None,
        label: str = "",
        spec: Optional[VertexMapSpec] = None,
    ) -> VertexSubset:
        """Apply ``M`` to each vertex of ``subset`` passing ``F``; return
        the subset of vertices that passed ``F``.

        ``spec`` optionally declares the superstep's computation for the
        vectorized backend; it is ignored on the interpreted backend and
        whenever it cannot be applied (fallback rules in
        ``docs/performance.md``)."""
        fw = self.flashware
        fw.begin_superstep("vertex_map", label, frontier_in=subset.size())
        if fw.tracer.enabled:
            fw.annotate_span(primitive="VERTEXMAP", F=fn_label(F), M=fn_label(M))
        spec, spec_origin = self._compile_vertex_spec(spec, F, M)
        if self.auto_analyze and self.analysis != "off":
            classification = analyze_vertex_map(
                self, subset, F, M, label=label, spec=spec
            )
            if spec is not None:
                validate_spec(self, "vertex_map", spec, classification)
        use_col = (
            spec is not None
            and self._columnar
            and _vec.vertex_map_supported(self, spec, F, M)
        )
        self._note_plan("vertex_map", label, spec_origin, spec, use_col)
        if use_col:
            name = "oocore" if self._oocore else "vectorized"
            self.metrics.note_backend(name)
            fw.annotate_span(backend=name)
            if spec_origin == "synthesized":
                fw.annotate_span(spec="synthesized")
            runner = _ooc.run_vertex_map if self._oocore else _vec.run_vertex_map
            try:
                return runner(self, subset, F, M, spec)
            except Exception:
                fw.abort_superstep()
                raise
        self.metrics.note_backend("interp")
        fw.annotate_span(backend="interp")
        if self._dist is not None:
            try:
                d_out, d_updates = self._dist.run_vertex_map(self, subset, F, M)
            except Exception:
                fw.abort_superstep()
                raise
            fw.barrier(d_updates, None, broadcast_all=False, frontier_out=len(d_out))
            return VertexSubset(self, d_out)
        out: List[int] = []
        updates: Dict[int, Dict[str, Any]] = {}
        try:
            for vid in subset:
                worker = self._owner(vid)
                view = WorkingView(self, vid)
                if F is not None:
                    fw.charge_ops(worker, 1)
                    if not F(view):
                        continue
                if M is not None:
                    fw.charge_ops(worker, 1)
                    result = M(view)
                    if isinstance(result, WorkingView):
                        view = result
                out.append(vid)
                if view.staged:
                    updates[vid] = dict(view.staged)
        except Exception:
            fw.abort_superstep()
            raise
        fw.barrier(updates, None, broadcast_all=False, frontier_out=len(out))
        return VertexSubset(self, out)

    # ------------------------------------------------------------------
    # EDGEMAP (Algorithms 4-6)
    # ------------------------------------------------------------------
    def edge_map(
        self,
        subset: VertexSubset,
        edges: EdgeSet,
        F: Optional[VertexFn] = None,
        M: Optional[VertexFn] = None,
        C: Optional[VertexFn] = None,
        R: Optional[VertexFn] = None,
        label: str = "",
        spec: Optional[EdgeMapSpec] = None,
    ) -> VertexSubset:
        """Adaptive EDGEMAP: dense (pull) when the active set is heavy,
        sparse (push) otherwise (Algorithm 4).  With ``R=None`` the pull
        mode is forced, since push needs a reduce function (§III-A).

        The mode decision depends only on topology and frontier size, so
        it is identical on every backend; ``spec`` rides along to the
        chosen kernel."""
        self._issuer = "EDGEMAP"
        if R is None:
            self.metrics.note_mode("dense")
            return self.edge_map_dense(subset, edges, F, M, C, label=label, spec=spec)
        work = self._out_work(edges, subset) + subset.size()
        if work > self.dense_threshold:
            self.metrics.note_mode("dense")
            return self.edge_map_dense(subset, edges, F, M, C, label=label, spec=spec)
        self.metrics.note_mode("sparse")
        return self.edge_map_sparse(subset, edges, F, M, C, R, label=label, spec=spec)

    def _out_work(self, edges: EdgeSet, subset: VertexSubset) -> int:
        """``edges.out_work`` with a bulk fast path for the plain edge
        set ``E`` (whose work is just the frontier's out-degree sum)."""
        if type(edges) is BaseEdges:
            if self._out_degree_cache is None:
                self._out_degree_cache = self.graph.out_degrees()
            return int(self._out_degree_cache[subset._sorted].sum())
        return edges.out_work(self, subset)

    def edge_map_dense(
        self,
        subset: VertexSubset,
        edges: EdgeSet,
        F: Optional[VertexFn] = None,
        M: Optional[VertexFn] = None,
        C: Optional[VertexFn] = None,
        label: str = "",
        spec: Optional[EdgeMapSpec] = None,
    ) -> VertexSubset:
        """The pull kernel (Algorithm 5): every candidate target scans its
        in-neighbors in the active set and applies ``M`` sequentially to
        its own working copy, stopping early when ``C`` fails."""
        if M is None:
            raise FlashUsageError("edge_map_dense requires a map function M")
        fw = self.flashware
        issuer, self._issuer = self._issuer, None
        edges.prepare(self)
        fw.begin_superstep("edge_map_dense", label, frontier_in=subset.size())
        if fw.tracer.enabled:
            fw.annotate_span(
                primitive=issuer or "EDGEMAPDENSE",
                mode="dense",
                F=fn_label(F),
                M=fn_label(M),
                C=fn_label(C),
            )
        spec, spec_origin = self._compile_edge_spec(
            "edge_map_dense", spec, edges, F, M, C, None
        )
        if self.auto_analyze and self.analysis != "off":
            classification = analyze_edge_map(
                self, "edge_map_dense", subset, edges, F, M, C, None,
                label=label, spec=spec,
            )
            if spec is not None:
                validate_spec(self, "edge_map_dense", spec, classification)
        use_col = (
            spec is not None
            and self._columnar
            and _vec.edge_map_supported(self, edges, spec, "dense", F, C)
        )
        self._note_plan("edge_map_dense", label, spec_origin, spec, use_col)
        if use_col:
            name = "oocore" if self._oocore else "vectorized"
            self.metrics.note_backend(name)
            fw.annotate_span(backend=name)
            if spec_origin == "synthesized":
                fw.annotate_span(spec="synthesized")
            runner = (
                _ooc.run_edge_map_dense if self._oocore else _vec.run_edge_map_dense
            )
            try:
                return runner(self, subset, spec)
            except Exception:
                fw.abort_superstep()
                raise
        self.metrics.note_backend("interp")
        fw.annotate_span(backend="interp")
        if self._dist is not None:
            try:
                d_out, d_updates = self._dist.run_edge_map_dense(
                    self, subset, edges, F, M, C
                )
            except Exception:
                fw.abort_superstep()
                raise
            fw.barrier(
                d_updates,
                None,
                broadcast_all=not edges.within_graph,
                frontier_out=len(d_out),
            )
            return VertexSubset(self, d_out)

        candidates = edges.candidate_targets(self)
        if candidates is None:
            target_iter: Iterable[int] = range(self.graph.num_vertices)
        else:
            target_iter = sorted({int(v) for v in candidates})

        out: List[int] = []
        updates: Dict[int, Dict[str, Any]] = {}
        try:
            for vid in target_iter:
                sources = edges.in_sources(self, vid)
                if len(sources) == 0:
                    continue
                worker = self._owner(vid)
                view = WorkingView(self, vid)
                applied = False
                for src in sources:
                    src = int(src)
                    fw.charge_ops(worker, 1)
                    if C is not None and not C(view):
                        break
                    if src not in subset:
                        continue
                    src_view = VertexView(self, src)
                    if F is None or F(src_view, view):
                        result = M(src_view, view)
                        if isinstance(result, WorkingView):
                            view = result
                        applied = True
                if applied:
                    out.append(vid)
                    if view.staged:
                        updates[vid] = dict(view.staged)
        except Exception:
            fw.abort_superstep()
            raise
        fw.barrier(
            updates,
            None,
            broadcast_all=not edges.within_graph,
            frontier_out=len(out),
        )
        return VertexSubset(self, out)

    def edge_map_sparse(
        self,
        subset: VertexSubset,
        edges: EdgeSet,
        F: Optional[VertexFn] = None,
        M: Optional[VertexFn] = None,
        C: Optional[VertexFn] = None,
        R: Optional[VertexFn] = None,
        label: str = "",
        spec: Optional[EdgeMapSpec] = None,
    ) -> VertexSubset:
        """The push kernel (Algorithm 6): active sources produce temporary
        target values, which are folded into the target's next state with
        the (associative, commutative) reduce function ``R``."""
        if M is None:
            raise FlashUsageError("edge_map_sparse requires a map function M")
        if R is None:
            raise FlashUsageError(
                "edge_map_sparse requires a reduce function R; use edge_map / "
                "edge_map_dense for the pull mode that applies M sequentially"
            )
        fw = self.flashware
        issuer, self._issuer = self._issuer, None
        edges.prepare(self)
        fw.begin_superstep("edge_map_sparse", label, frontier_in=subset.size())
        if fw.tracer.enabled:
            fw.annotate_span(
                primitive=issuer or "EDGEMAPSPARSE",
                mode="sparse",
                F=fn_label(F),
                M=fn_label(M),
                C=fn_label(C),
                R=fn_label(R),
            )
        spec, spec_origin = self._compile_edge_spec(
            "edge_map_sparse", spec, edges, F, M, C, R
        )
        if self.auto_analyze and self.analysis != "off":
            classification = analyze_edge_map(
                self, "edge_map_sparse", subset, edges, F, M, C, R,
                label=label, spec=spec,
            )
            if spec is not None:
                validate_spec(self, "edge_map_sparse", spec, classification)
        use_col = (
            spec is not None
            and self._columnar
            and spec.kind == "reduce"
            and _vec.edge_map_supported(self, edges, spec, "sparse", F, C)
        )
        self._note_plan("edge_map_sparse", label, spec_origin, spec, use_col)
        if use_col:
            name = "oocore" if self._oocore else "vectorized"
            self.metrics.note_backend(name)
            fw.annotate_span(backend=name)
            if spec_origin == "synthesized":
                fw.annotate_span(spec="synthesized")
            runner = (
                _ooc.run_edge_map_sparse if self._oocore else _vec.run_edge_map_sparse
            )
            try:
                return runner(self, subset, spec)
            except Exception:
                fw.abort_superstep()
                raise
        self.metrics.note_backend("interp")
        fw.annotate_span(backend="interp")
        if self._dist is not None:
            try:
                d_out, d_updates, d_contrib = self._dist.run_edge_map_sparse(
                    self, subset, edges, F, M, C, R
                )
            except Exception:
                fw.abort_superstep()
                raise
            fw.barrier(
                d_updates,
                d_contrib,
                broadcast_all=not edges.within_graph,
                frontier_out=len(d_out),
            )
            return VertexSubset(self, d_out)

        temps: Dict[int, List[Tuple[Dict[str, Any], int]]] = {}
        out: Set[int] = set()
        try:
            for u in subset:
                worker = self._owner(u)
                src_view = VertexView(self, u)
                for d in edges.out_targets(self, u):
                    d = int(d)
                    fw.charge_ops(worker, 1)
                    if C is not None and not C(VertexView(self, d)):
                        continue
                    tgt_view = WorkingView(self, d)
                    if F is not None and not F(src_view, tgt_view):
                        continue
                    result = M(src_view, tgt_view)
                    if isinstance(result, WorkingView):
                        tgt_view = result
                    fw.charge_ops(worker, 1)
                    temps.setdefault(d, []).append((dict(tgt_view.staged), worker))
                    out.add(d)

            updates: Dict[int, Dict[str, Any]] = {}
            contributors: Dict[int, Set[int]] = {}
            for d, temp_list in temps.items():
                owner = self._owner(d)
                acc = WorkingView(self, d)
                for temp, part in temp_list:
                    fw.charge_ops(owner, 1)
                    temp_view = WorkingView(self, d, local=dict(temp))
                    result = R(temp_view, acc)
                    if isinstance(result, WorkingView):
                        acc = result
                if acc.staged:
                    updates[d] = dict(acc.staged)
                contributors[d] = {part for _, part in temp_list}
        except Exception:
            fw.abort_superstep()
            raise
        fw.barrier(
            updates,
            contributors,
            broadcast_all=not edges.within_graph,
            frontier_out=len(out),
        )
        return VertexSubset(self, sorted(out))

    # ------------------------------------------------------------------
    # Auxiliary operators
    # ------------------------------------------------------------------
    def dsu(self) -> DSU:
        """A fresh disjoint-set over all vertices (the paper's pre-defined
        ``dsu`` helper used by BCC and MSF).  Under an active tracer the
        returned DSU emits one ``dsu_union`` instant per successful
        merge, attributing union-find work to the trace timeline."""
        tracer = self.flashware.tracer
        if tracer.enabled:
            return _TracedDSU(self.graph.num_vertices, tracer)
        return DSU(self.graph.num_vertices)

    def collect(self, items_per_vertex: Dict[int, Sequence[Any]], label: str = "reduce") -> List[Any]:
        """The paper's ``REDUCE`` auxiliary: gather worker-local results
        into one global list (charged as one message per contributing
        remote worker)."""
        fw = self.flashware
        rec = fw.begin_superstep("collect", label)
        if fw.tracer.enabled:
            fw.annotate_span(primitive="REDUCE")
        per_worker: Dict[int, int] = {}
        gathered: List[Any] = []
        for vid in sorted(items_per_vertex):
            items = items_per_vertex[vid]
            gathered.extend(items)
            worker = self._owner(vid)
            per_worker[worker] = per_worker.get(worker, 0) + len(items)
        for worker, count in per_worker.items():
            if worker != 0 and count:
                rec.reduce_messages += 1
                rec.reduce_values += count
        fw.barrier({}, None)
        return gathered

    # ------------------------------------------------------------------
    # Cost / metrics helpers
    # ------------------------------------------------------------------
    def cost(self, cluster: Optional[ClusterSpec] = None, model: Optional[CostModel] = None) -> CostBreakdown:
        """Simulated cost of everything run so far on ``cluster`` (defaults
        to one node per worker, 32 cores each)."""
        if cluster is None:
            cluster = ClusterSpec(nodes=self.num_workers, cores_per_node=32)
        model = model or CostModel()
        return model.estimate(self.metrics, cluster)

    def reset_metrics(self) -> None:
        self.flashware.metrics.reset()

    def dist_summary(self) -> Dict[str, Any]:
        """Real-traffic totals of the multi-process executor (empty dict
        on the inline executor, where no physical messages exist).  Under
        ``analysis="compile"`` the communication plan and per-kernel
        dispatch decisions ride along."""
        summarize = getattr(self.flashware, "dist_summary", None)
        out = summarize() if summarize is not None else {}
        if self.comm_plan is not None and out:
            out["comm_plan"] = self.comm_plan.describe()
            out["kernel_plan"] = {k: dict(v) for k, v in self.kernel_plan.items()}
        return out

    def worker_health(self) -> List[Dict[str, Any]]:
        """Per-rank process health of the worker pool (empty list on the
        inline executor): rank, pid, alive, exitcode, and status in
        ``running``/``exited``/``dead``."""
        session = getattr(self.flashware, "session", None)
        if session is None:
            return []
        return session.pool.supervisor.health()

    def close(self) -> None:
        """Release executor resources: worker-session teardown for
        ``executor='mp'``, memory-mapped block handles (and the block
        store itself, when this engine built it) for
        ``backend='oocore'``; a no-op inline.  Idempotent — safe to call
        any number of times, so pooled/shared engines (the serving
        layer) and ``finally`` blocks can all close defensively.  The
        engine stays readable (values/metrics) but cannot run further
        supersteps in mp or oocore mode."""
        if self._closed:
            return
        self._closed = True
        if self._ooc is not None:
            self._ooc.close()
        if self._dist is not None:
            self._dist.close()
            self._dist = None
            closer = getattr(self.flashware, "close", None)
            if closer is not None:
                closer()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "FlashEngine":
        """Context-manager protocol: ``with FlashEngine(g) as eng:``
        guarantees worker processes and shared-memory segments are
        released on exit, however the block ends."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FlashEngine({self.graph!r}, workers={self.num_workers}, "
            f"properties={self.flashware.state.property_names})"
        )
