"""Vertex handles passed to user functions.

User functions in FLASH receive *vertex* arguments and read/write vertex
properties through plain attribute access (``v.dis``, ``d.p = s.id``),
exactly like the paper's pseudocode.  Three flavors exist:

* :class:`VertexView` — read-only; given as the *source* argument of
  ``F``/``M`` and as the argument of ``C`` (the model never lets an edge
  function mutate its source);
* :class:`WorkingView` — a mutable copy-on-write view over the current
  snapshot; writes land in a local buffer that the engine stages into
  FLASHWARE's next states at the barrier;
* :class:`TracingView` — a working view that additionally records every
  property get/put for the critical-property analysis (paper Table II).

Besides declared properties, every view exposes the built-in read-only
attributes ``id``, ``deg``, ``out_deg`` and ``in_deg`` that the paper's
algorithms use freely (e.g. MIS's ``v.deg * |V| + v.id``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FlashUsageError

#: Attribute names with built-in meaning; properties may not shadow them.
RESERVED_ATTRIBUTES = frozenset({"id", "deg", "out_deg", "in_deg"})


class VertexView:
    """Read-only handle on the current (snapshot) state of a vertex."""

    __slots__ = ("_engine", "_vid")

    def __init__(self, engine, vid: int):
        object.__setattr__(self, "_engine", engine)
        object.__setattr__(self, "_vid", int(vid))

    # -- built-ins ------------------------------------------------------
    @property
    def id(self) -> int:
        return self._vid

    @property
    def deg(self) -> int:
        return self._engine.graph.degree(self._vid)

    @property
    def out_deg(self) -> int:
        return self._engine.graph.out_degree(self._vid)

    @property
    def in_deg(self) -> int:
        return self._engine.graph.in_degree(self._vid)

    # -- property access -------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        try:
            return self._engine.flashware.state.get(self._vid, name)
        except KeyError:
            raise AttributeError(
                f"vertex has no property {name!r}; declare it with "
                f"engine.add_property({name!r}, ...)"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise FlashUsageError(
            f"cannot write {name!r} on a read-only vertex view: edge functions "
            f"may only update the target vertex"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<vertex {self._vid}>"


class WorkingView(VertexView):
    """Mutable copy-on-write handle: reads fall through to the snapshot,
    writes stay local until the engine commits them at the barrier."""

    __slots__ = ("_local",)

    def __init__(self, engine, vid: int, local: Optional[Dict[str, Any]] = None):
        super().__init__(engine, vid)
        object.__setattr__(self, "_local", local if local is not None else {})

    def __getattr__(self, name: str) -> Any:
        local = self._local
        if name in local:
            return local[name]
        return super().__getattr__(name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in RESERVED_ATTRIBUTES:
            raise FlashUsageError(f"{name!r} is a built-in read-only attribute")
        if not self._engine.flashware.state.has_property(name):
            raise FlashUsageError(
                f"unknown property {name!r}; declare it with "
                f"engine.add_property({name!r}, ...) before use"
            )
        self._local[name] = value

    @property
    def staged(self) -> Dict[str, Any]:
        """The locally written (uncommitted) property values."""
        return self._local


class TracingView(WorkingView):
    """A working view that records (op, role, property) access events."""

    __slots__ = ("_events", "_role")

    def __init__(self, engine, vid: int, role: str, events: List[Tuple[str, str, str]]):
        super().__init__(engine, vid)
        object.__setattr__(self, "_role", role)
        object.__setattr__(self, "_events", events)

    def __getattr__(self, name: str) -> Any:
        value = super().__getattr__(name)
        self._events.append(("get", self._role, name))
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        super().__setattr__(name, value)
        self._events.append(("put", self._role, name))
