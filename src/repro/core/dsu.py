"""Disjoint-set union — the pre-defined helper FLASH ships for BCC/MSF.

The paper (Appendix B-H, B-J): "``dsu_find`` and ``dsu_union`` are
pre-defined functions provided by FLASH, to implement the disjoint set
(union find algorithm) which is often used in graph applications."
"""

from __future__ import annotations

from typing import Dict, Iterator, List


class DSU:
    """Union-find over the ids ``0 .. n-1`` with path compression and
    union by rank."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_components(self) -> int:
        return self._count

    def find(self, x: int) -> int:
        """Representative of ``x``'s component."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``.  Returns True when the
        components were previously distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self._count -= 1
        return True

    def same(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def roots(self) -> Iterator[int]:
        """All component representatives."""
        return (x for x in range(len(self._parent)) if self.find(x) == x)

    def components(self) -> Dict[int, List[int]]:
        """Mapping of representative → member ids."""
        out: Dict[int, List[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out

    def labels(self) -> List[int]:
        """Component representative per id (a flat labeling)."""
        return [self.find(x) for x in range(len(self._parent))]
