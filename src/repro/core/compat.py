"""Simulating the vertex-centric (Pregel) model on FLASH — paper §III-A
and Appendix A (Algorithms 7 and 8).

The paper proves FLASH subsumes classic vertex-centric models by
construction: each superstep's local computation becomes a VERTEXMAP
that consumes the vertex's ``inbox`` and fills its ``outbox``, and an
EDGEMAP moves outbox messages into the targets' inboxes with a
set-union reduce.  :func:`run_vertex_centric` is that construction,
verbatim — any Pregel-style ``compute(value, inbox) -> (value, outbox)``
function runs unmodified on a FLASH engine.

Message addressing: the returned ``outbox`` is either a list of
messages broadcast to all out-neighbors, or a dict ``{target_id: [msgs]}``
for targeted sends along edges.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.algorithms.common import AlgorithmResult, local_list, make_engine
from repro.core.engine import FlashEngine
from repro.core.primitives import ctrue
from repro.errors import ReproError
from repro.graph.graph import Graph

Outbox = Union[List[Any], Dict[int, List[Any]]]
ComputeFn = Callable[[int, Any, List[Any], int], Tuple[Any, Outbox]]


def run_vertex_centric(
    graph_or_engine: Union[Graph, FlashEngine],
    compute: ComputeFn,
    initial_value: Callable[[int], Any],
    num_workers: int = 4,
    max_supersteps: int = 100_000,
) -> AlgorithmResult:
    """Run a vertex-centric program on FLASH (paper Algorithm 8).

    Parameters
    ----------
    compute:
        ``compute(vid, value, inbox, superstep) -> (new_value, outbox)``.
        A vertex halts by returning an empty outbox; it is reactivated by
        incoming messages, exactly like Pregel.
    initial_value:
        Initial vertex value by id.

    Returns the final values; ``engine.metrics`` carries the usual
    accounting (each simulated superstep costs one VERTEXMAP plus one
    EDGEMAP, as the construction prescribes).
    """
    eng = make_engine(graph_or_engine, num_workers)
    eng.add_property("value", None)
    eng.add_property("inbox", factory=list)
    eng.add_property("outbox", factory=dict)

    def init(v):
        v.value = initial_value(v.id)
        return v

    superstep = [0]

    def local(v):
        new_value, outbox = compute(v.id, v.value, list(v.inbox), superstep[0])
        v.value = new_value
        v.inbox = []
        if isinstance(outbox, dict):
            v.outbox = {int(t): list(msgs) for t, msgs in outbox.items()}
        else:
            v.outbox = {int(t): list(outbox) for t in eng.graph.out_neighbors(v.id)} if outbox else {}
        return v

    def has_mail(s, d):
        return d.id in s.outbox

    def deliver(s, d):
        local_list(d, "inbox").extend(s.outbox[d.id])
        return d

    def merge(t, d):
        local_list(d, "inbox").extend(t.inbox)
        return d

    active = eng.vertex_map(eng.V, ctrue, init, label="vc:init")
    while eng.size(active) != 0:
        if superstep[0] >= max_supersteps:
            raise ReproError("vertex-centric program exceeded the superstep limit")
        # Local computation: consume inbox, produce value + outbox.
        eng.vertex_map(active, ctrue, local, label="vc:compute")
        superstep[0] += 1
        # Message passing: outboxes flow along the edges into inboxes.
        receivers = eng.edge_map(active, eng.E, has_mail, deliver, ctrue, merge, label="vc:deliver")
        active = receivers

    return AlgorithmResult(
        "vertex_centric", eng, eng.values("value"), iterations=superstep[0]
    )
