"""Small functional helpers from the paper's listings.

* ``ctrue`` — the default condition function (always true), named
  ``CTRUE`` in the paper;
* ``bind`` — supplies trailing arguments to a user function so globals
  (root ids, iteration counters, ...) can be used inside local functions
  (§III-B: "To use a global variable such as r in a local function, we
  provide a bind operator");
* ``size`` — functional form of ``SIZE(U)``.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.core.subset import VertexSubset


def ctrue(*_args: Any) -> bool:
    """The paper's ``CTRUE``: accepts anything, always returns True."""
    return True


#: Paper-style alias.
CTRUE = ctrue


def bind(fn: Callable, *bound: Any) -> Callable:
    """Return ``fn`` with ``bound`` appended to every call's arguments.

    ``INIT.bind(root)`` in the paper becomes ``bind(init, root)`` here:
    the kernel calls the result with its usual vertex arguments and the
    bound globals arrive after them.

    The wrapper advertises the bound values as ``__flash_bound__`` (and
    the wrapped function via ``functools.wraps``'s ``__wrapped__``), so
    the static analyzer (:mod:`repro.analysis.staticpass.analyzer`) can
    see through the binding: the leading parameters keep their vertex
    roles, and the trailing parameters resolve to the concrete bound
    objects — which is how e.g. a bound engine's ``get`` calls are
    recognized inside a kernel.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any):
        return fn(*args, *bound)

    wrapper.__flash_bound__ = bound
    return wrapper


def size(subset: VertexSubset) -> int:
    """``SIZE(U)`` — the number of vertices in the subset."""
    return subset.size()


def fn_label(fn: Any) -> str:
    """A stable display name for a user function, used by the tracing
    layer to attribute spans to the F/M/C/R that ran.  ``bind``-wrapped
    functions keep their wrapped name via ``functools.wraps``; unnamed
    callables fall back to their type name; ``None`` (an omitted
    function slot) renders empty.

    >>> fn_label(ctrue)
    'ctrue'
    >>> fn_label(bind(ctrue, 1))
    'ctrue'
    >>> fn_label(None)
    ''
    """
    if fn is None:
        return ""
    return getattr(fn, "__name__", None) or type(fn).__name__
