"""The FLASH programming model (paper §III).

Public surface:

* :class:`~repro.core.engine.FlashEngine` — owns the graph, the vertex
  properties and the FLASHWARE middleware; exposes the three primary
  primitives ``vertex_map`` / ``edge_map`` (+ explicit ``edge_map_dense``
  / ``edge_map_sparse``) and ``size``;
* :class:`~repro.core.subset.VertexSubset` — the global-perspective
  vertex-set type with ``union``/``minus``/``intersect``/``add``/
  ``contain``;
* :mod:`~repro.core.edgeset` — edge-set constructors ``E`` (via
  ``engine.E``), ``reverse``, ``join`` (two-hop, target-filtered and
  property/virtual edges) and ``edges_from``;
* ``ctrue`` and ``bind`` — the default condition function and the
  global-variable binder from the paper's listings;
* :class:`~repro.core.dsu.DSU` — the pre-defined disjoint-set helper
  used by BCC and MSF.
"""

from repro.core.dsu import DSU
from repro.core.edgeset import (
    EdgeSet,
    edges_from,
    join,
    reverse,
)
from repro.core.engine import FlashEngine
from repro.core.primitives import CTRUE, bind, ctrue
from repro.core.subset import VertexSubset
from repro.core.vertex import VertexView

__all__ = [
    "DSU",
    "EdgeSet",
    "FlashEngine",
    "VertexSubset",
    "VertexView",
    "CTRUE",
    "bind",
    "ctrue",
    "edges_from",
    "join",
    "reverse",
]
