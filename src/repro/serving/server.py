"""The graph-as-a-service front end: a long-lived asyncio server over
one resident graph.

Architecture (see ``docs/serving.md``)::

    submit() ──► admission queue ──► dispatcher ──► worker engines
       │   (depth limit, deadlines)  (batching)     (thread pool)
       └── result cache probe                         │
             ▲                                        │
             └──────────── demultiplexed results ◄────┘

* The **graph is resident**: the CSR is built once and shared by a small
  pool of :class:`~repro.core.engine.FlashEngine` workers whose vertex
  columns persist across requests (scratch properties are dropped after
  every lease, so consecutive requests never collide).
* The **admission queue** bounds outstanding work: a full queue rejects
  with :class:`~repro.errors.QueueFullError` *before* enqueueing, and a
  request whose deadline passes while queued is dropped with
  :class:`~repro.errors.DeadlineExpiredError` *before* any execution.
* The **dispatcher** merges compatible batchable requests (equal
  ``batch_key``) arriving within ``batch_window`` seconds — up to
  ``max_batch`` — into one multi-source run and demultiplexes per-client
  results.
* The **result cache** is keyed by ``(graph_version, algorithm,
  params)``; ``bump_graph_version()`` makes every prior entry
  unreachable (and purges it), so stale results are never served.
* **Metrics** (latency percentiles, throughput, batch occupancy, cache
  hit rate, rejections) accumulate in :class:`ServingMetrics` and are
  exported through the PR-3 tracing layer: ``serve.request`` spans,
  ``serve.batch`` spans, ``serve.reject`` / ``serve.cache_hit``
  instants, and one final ``serve.metrics`` snapshot instant at stop.
"""

from __future__ import annotations

import asyncio
import queue as thread_queue
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.engine import FlashEngine
from repro.errors import (
    DeadlineExpiredError,
    DistributedError,
    EngineFailureError,
    QueueFullError,
    ServerClosedError,
)
from repro.graph.graph import Graph
from repro.runtime.tracing import NULL_TRACER, Tracer
from repro.serving.cache import ResultCache
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ServedAlgorithm, build_registry, resolve


@dataclass
class QueryResult:
    """What a client gets back from :meth:`GraphServer.submit`."""

    algorithm: str
    params: Dict[str, Any]
    value: Any
    latency: float
    graph_version: int
    cached: bool = False
    batched: bool = False
    batch_size: int = 1


@dataclass
class _Pending:
    """One admitted request waiting for execution."""

    algo: ServedAlgorithm
    params: Dict[str, Any]
    future: "asyncio.Future[QueryResult]"
    submitted: float
    deadline_at: Optional[float]
    span: Any = None
    batch_key: Hashable = field(default=None)
    #: Set when the request was requeued after an engine failure; a
    #: second failure errors out instead of retrying forever.
    retried: bool = False


class GraphServer:
    """Serve concurrent graph queries from one resident graph.

    Usage::

        async with GraphServer(graph, engine_pool=2) as server:
            result = await server.submit("bfs-from-source", {"source": 3})

    All knobs are constructor parameters; ``batching`` / ``caching``
    exist so benchmarks can ablate each independently.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        num_workers: int = 4,
        engine_pool: int = 2,
        backend: Optional[str] = None,
        queue_depth: int = 64,
        batch_window: float = 0.002,
        max_batch: int = 16,
        batching: bool = True,
        caching: bool = True,
        cache_capacity: int = 4096,
        artifact_cache_capacity: int = 64,
        default_deadline: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ):
        if engine_pool < 1:
            raise ValueError("engine_pool must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.graph = graph
        self.num_workers = num_workers
        self.engine_pool = engine_pool
        self.backend = backend
        self.queue_depth = queue_depth
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.batching = batching
        self.caching = caching
        self.default_deadline = default_deadline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry: Dict[str, ServedAlgorithm] = build_registry()
        self.cache = ResultCache(capacity=cache_capacity)
        self.artifact_cache = ResultCache(capacity=artifact_cache_capacity)
        self.metrics = ServingMetrics()
        self._graph_version = 0
        self._running = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._paused: Optional[asyncio.Event] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._inflight: set = set()
        self._holdover: "deque[_Pending]" = deque()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Pooled engines as (slot, engine); the slot index keys the
        #: health map so replacements stay attributable.
        self._engines: "thread_queue.Queue[Tuple[int, FlashEngine]]" = thread_queue.Queue()
        #: Per-slot health: "ok" | "replaced" | "failed" (failed slots
        #: are permanently out of the pool — degraded mode).
        self._engine_health: Dict[int, str] = {}
        #: Chaos hook: batches left to fail with EngineFailureError.
        self._induced_failures = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "GraphServer":
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._paused = asyncio.Event()
        self._paused.set()
        self._slots = asyncio.Semaphore(self.engine_pool)
        self._executor = ThreadPoolExecutor(
            max_workers=self.engine_pool, thread_name_prefix="repro-serve"
        )
        for slot in range(self.engine_pool):
            self._engines.put((slot, self._build_engine()))
            self._engine_health[slot] = "ok"
        self._running = True
        self.metrics.mark_started()
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> Dict[str, Any]:
        """Stop accepting requests, drain in-flight work, fail whatever
        is still queued, release engines; returns the final snapshot."""
        if not self._running:
            return self.metrics_snapshot()
        self._running = False
        if self._paused is not None:
            self._paused.set()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        pending = self._drain_pending()
        # A request requeued by an engine failure already started once;
        # failing it now would surface the engine's death to the client.
        # Drain those through a final execution round instead.
        for req in pending:
            if req.retried and not req.future.done():
                await self._execute_batch([req])
        closed = ServerClosedError("server stopped before the request ran")
        for req in pending:
            if not req.future.done():
                req.future.set_exception(closed)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        while not self._engines.empty():
            self._engines.get_nowait()[1].close()
        self.metrics.mark_stopped()
        snapshot = self.metrics_snapshot()
        if self.tracer.enabled:
            self.tracer.instant("serve.metrics", "serving", **snapshot)
        return snapshot

    def _drain_pending(self) -> List[_Pending]:
        pending = list(self._holdover)
        self._holdover.clear()
        if self._queue is not None:
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        return pending

    async def __aenter__(self) -> "GraphServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # Test/inspection hooks: freeze the dispatcher so the queue fills.
    def pause(self) -> None:
        if self._paused is not None:
            self._paused.clear()

    def resume(self) -> None:
        if self._paused is not None:
            self._paused.set()

    # ------------------------------------------------------------------
    # Graph versioning
    # ------------------------------------------------------------------
    @property
    def graph_version(self) -> int:
        return self._graph_version

    def bump_graph_version(self, purge: bool = True) -> int:
        """Declare the resident graph updated: every cached result and
        artifact belonging to older versions becomes unreachable (the
        version is part of the cache key) and, with ``purge``, is
        dropped immediately."""
        self._graph_version += 1
        if purge:
            self.cache.purge_older_than(self._graph_version)
            self.artifact_cache.purge_older_than(self._graph_version)
        if self.tracer.enabled:
            self.tracer.instant(
                "serve.graph_version", "serving", version=self._graph_version
            )
        return self._graph_version

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        algorithm: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Submit one query and await its result.

        Raises :class:`UnknownAlgorithmError` / :class:`InvalidRequestError`
        on a malformed request, :class:`QueueFullError` when the
        admission queue is at depth, and :class:`DeadlineExpiredError`
        when ``deadline`` (seconds, relative) passes before execution
        starts.
        """
        if not self._running or self._loop is None:
            raise ServerClosedError("server is not running; use 'async with' or start()")
        algo = resolve(self.registry, algorithm)
        canon = algo.canonicalize(params, self.graph.num_vertices)
        now = self._loop.time()
        version = self._graph_version
        if self.caching:
            value, hit = self.cache.lookup(version, algo.name, algo.cache_params(canon))
            if hit:
                latency = self._loop.time() - now
                self.metrics.record_request(algo.name, "cache_hit", latency)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "serve.cache_hit", "serving", algorithm=algo.name
                    )
                return QueryResult(
                    algorithm=algo.name,
                    params=canon,
                    value=value,
                    latency=latency,
                    graph_version=version,
                    cached=True,
                )
        effective_deadline = deadline if deadline is not None else self.default_deadline
        pending = _Pending(
            algo=algo,
            params=canon,
            future=self._loop.create_future(),
            submitted=now,
            deadline_at=(now + effective_deadline) if effective_deadline else None,
            span=self.tracer.start("serve.request", "serving", algorithm=algo.name)
            if self.tracer.enabled
            else None,
            batch_key=algo.batch_key(canon),
        )
        assert self._queue is not None
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.record_request(algo.name, "rejected_queue_full")
            if self.tracer.enabled:
                self.tracer.instant(
                    "serve.reject", "serving", algorithm=algo.name, reason="queue_full"
                )
            if pending.span is not None:
                pending.span.end(status="rejected_queue_full")
            raise QueueFullError(
                f"admission queue full (depth {self.queue_depth}); "
                f"request {algo.name} rejected"
            ) from None
        return await pending.future

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _expired(self, req: _Pending) -> bool:
        assert self._loop is not None
        return req.deadline_at is not None and self._loop.time() > req.deadline_at

    def _reject_deadline(self, req: _Pending) -> None:
        self.metrics.record_request(req.algo.name, "rejected_deadline")
        if self.tracer.enabled:
            self.tracer.instant(
                "serve.reject", "serving", algorithm=req.algo.name, reason="deadline"
            )
        if req.span is not None:
            req.span.end(status="rejected_deadline")
        if not req.future.done():
            req.future.set_exception(
                DeadlineExpiredError(
                    f"{req.algo.name} request deadline expired before execution"
                )
            )

    def _pop_holdover(self, key: Hashable) -> Optional[_Pending]:
        for i, cand in enumerate(self._holdover):
            if cand.batch_key == key:
                del self._holdover[i]
                return cand
        return None

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None and self._queue is not None
        assert self._paused is not None and self._slots is not None
        while True:
            await self._paused.wait()
            if self._holdover:
                req = self._holdover.popleft()
            else:
                req = await self._queue.get()
            if self._expired(req):
                self._reject_deadline(req)
                continue
            batch = [req]
            key = req.batch_key
            if self.batching and key is not None and self.max_batch > 1:
                window_end = self._loop.time() + self.batch_window
                while len(batch) < self.max_batch:
                    mate = self._pop_holdover(key)
                    if mate is None:
                        timeout = window_end - self._loop.time()
                        if timeout <= 0:
                            break
                        try:
                            mate = await asyncio.wait_for(self._queue.get(), timeout)
                        except asyncio.TimeoutError:
                            break
                    if self._expired(mate):
                        self._reject_deadline(mate)
                        continue
                    if mate.batch_key == key:
                        batch.append(mate)
                    else:
                        self._holdover.append(mate)
            await self._slots.acquire()
            task = self._loop.create_task(self._execute_batch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._batch_done)

    def _batch_done(self, task: "asyncio.Task[None]") -> None:
        self._inflight.discard(task)
        if self._slots is not None:
            self._slots.release()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _execute_batch(self, batch: List[_Pending]) -> None:
        assert self._loop is not None
        live = []
        for req in batch:
            if self._expired(req):
                self._reject_deadline(req)
            else:
                live.append(req)
        if not live:
            return
        algo = live[0].algo
        version = self._graph_version
        span = (
            self.tracer.start(
                "serve.batch", "serving", algorithm=algo.name, occupancy=len(live)
            )
            if self.tracer.enabled
            else None
        )
        try:
            values, supersteps = await self._loop.run_in_executor(
                self._executor,
                self._run_batch,
                algo,
                [req.params for req in live],
                version,
            )
        except (EngineFailureError, DistributedError) as exc:
            # The engine died mid-batch (its worker processes crashed or
            # a chaos hook killed it).  The lease already replaced it;
            # requeue each first-time request once instead of surfacing
            # the engine's death to the client.
            retry: List[_Pending] = []
            for req in live:
                if self._running and not req.retried and not req.future.done():
                    retry.append(req)
                else:
                    self.metrics.record_request(algo.name, "error")
                    if req.span is not None:
                        req.span.end(status="error")
                    if not req.future.done():
                        req.future.set_exception(exc)
            for req in retry:
                req.retried = True
                self.metrics.record_request(algo.name, "requeued")
                if self.tracer.enabled:
                    self.tracer.instant(
                        "serve.requeue", "serving", algorithm=algo.name
                    )
                self._requeue(req)
            if span is not None:
                span.end(status="engine_failure", requeued=len(retry))
            return
        except Exception as exc:  # surfaced to every waiting client
            for req in live:
                self.metrics.record_request(algo.name, "error")
                if req.span is not None:
                    req.span.end(status="error")
                if not req.future.done():
                    req.future.set_exception(exc)
            if span is not None:
                span.end(status="error")
            return
        now = self._loop.time()
        batched = len(live) > 1
        for req, value in zip(live, values):
            latency = now - req.submitted
            self.metrics.record_request(algo.name, "ok", latency)
            if req.span is not None:
                req.span.end(status="ok", batched=batched)
            if not req.future.done():
                req.future.set_result(
                    QueryResult(
                        algorithm=algo.name,
                        params=req.params,
                        value=value,
                        latency=latency,
                        graph_version=version,
                        batched=batched,
                        batch_size=len(live),
                    )
                )
        self.metrics.record_batch(len(live), supersteps)
        if span is not None:
            span.end(status="ok", supersteps=supersteps)

    def _requeue(self, req: _Pending) -> None:
        """Re-admit a request whose engine failed.  Prefer the asyncio
        queue (it wakes the dispatcher); fall back to the holdover deque
        when the queue is at depth — a full queue guarantees the
        dispatcher has work and will sweep the holdover next."""
        assert self._queue is not None
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            self._holdover.append(req)

    def _build_engine(self) -> FlashEngine:
        return FlashEngine(
            self.graph, num_workers=self.num_workers, backend=self.backend
        )

    def _pool_size(self) -> int:
        return sum(1 for s in self._engine_health.values() if s != "failed")

    def _replace_engine(self, slot: int, engine: FlashEngine) -> None:
        """The engine in ``slot`` failed: close it and put a fresh one in
        its place.  If even building a replacement fails, the slot is
        retired and the pool keeps serving at reduced capacity."""
        try:
            engine.close()
        except Exception:
            pass
        try:
            replacement = self._build_engine()
        except Exception:
            self._engine_health[slot] = "failed"
            self.metrics.record_engine_failure(replaced=False)
            if self.tracer.enabled:
                self.tracer.instant(
                    "serve.engine_lost", "serving",
                    slot=slot, pool_size=self._pool_size(),
                )
            return
        self._engine_health[slot] = "replaced"
        self.metrics.record_engine_failure(replaced=True)
        self._engines.put((slot, replacement))
        if self.tracer.enabled:
            self.tracer.instant("serve.engine_replaced", "serving", slot=slot)

    @contextmanager
    def _lease_engine(self):
        """Borrow a pooled resident engine; on return, drop every
        property the run added so the next lease starts clean.  A lease
        that raises an engine-failure error (crashed worker processes,
        induced chaos) swaps a fresh engine into the slot instead of
        returning the broken one."""
        if self._pool_size() == 0:
            raise ServerClosedError(
                "every pooled engine has failed and could not be replaced"
            )
        slot, engine = self._engines.get()
        base = set(engine.flashware.state.property_names)
        try:
            yield engine
        except (EngineFailureError, DistributedError):
            self._replace_engine(slot, engine)
            raise
        except BaseException:
            # Algorithm-level errors leave the engine healthy: scrub the
            # scratch properties and return it to the pool.
            for name in list(engine.flashware.state.property_names):
                if name not in base:
                    engine.drop_property(name)
            self._engines.put((slot, engine))
            raise
        else:
            for name in list(engine.flashware.state.property_names):
                if name not in base:
                    engine.drop_property(name)
            self._engines.put((slot, engine))

    def inject_engine_failure(self, count: int = 1) -> None:
        """Chaos hook: make the next ``count`` executed batches fail with
        :class:`EngineFailureError`, exercising the replace-and-requeue
        path exactly like a real engine death would."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._induced_failures = count

    def _run_batch(
        self,
        algo: ServedAlgorithm,
        params_list: List[Dict[str, Any]],
        version: int,
    ) -> Tuple[List[Any], int]:
        """Worker-thread entry: execute one (possibly merged) batch and
        return per-request values plus engine supersteps spent."""
        with self._lease_engine() as engine:
            if self._induced_failures > 0:
                self._induced_failures -= 1
                raise EngineFailureError(
                    "induced engine failure (chaos hook)"
                )
            steps_before = engine.metrics.num_supersteps
            if algo.artifact is not None:
                values = [
                    self._run_derived(algo, engine, params, version)
                    for params in params_list
                ]
            else:
                values = self._run_direct(algo, engine, params_list)
            supersteps = engine.metrics.num_supersteps - steps_before
        if self.caching:
            for params, value in zip(params_list, values):
                self.cache.put(version, algo.name, algo.cache_params(params), value)
        return values, supersteps

    def _run_derived(
        self,
        algo: ServedAlgorithm,
        engine: FlashEngine,
        params: Dict[str, Any],
        version: int,
    ) -> Any:
        akey = algo.artifact_key(params)
        artifact, hit = (None, False)
        if self.caching:
            artifact, hit = self.artifact_cache.lookup(version, algo.artifact, akey)
        if not hit:
            artifact = algo.compute_artifact(engine, params)
            if self.caching:
                self.artifact_cache.put(version, algo.artifact, akey, artifact)
        return algo.extract(artifact, params)

    def _run_direct(
        self,
        algo: ServedAlgorithm,
        engine: FlashEngine,
        params_list: List[Dict[str, Any]],
    ) -> List[Any]:
        if len(params_list) == 1:
            return [algo.run_single(engine, params_list[0])]
        # Duplicate requests (same canonical params) share one slot of
        # the merged run and are demultiplexed afterwards.
        index: Dict[Hashable, int] = {}
        unique: List[Dict[str, Any]] = []
        for params in params_list:
            cp = algo.cache_params(params)
            if cp not in index:
                index[cp] = len(unique)
                unique.append(params)
        if len(unique) == 1:
            base = [algo.run_single(engine, unique[0])]
        else:
            base = algo.run_multi(engine, unique)
        return [base[index[algo.cache_params(p)]] for p in params_list]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """Serving metrics + cache statistics + engine-pool health,
        JSON-friendly."""
        snap = self.metrics.snapshot(
            cache_stats={
                "results": self.cache.stats(),
                "artifacts": self.artifact_cache.stats(),
            }
        )
        snap["engines"].update(
            {
                "pool_size": self._pool_size(),
                "degraded": self._pool_size() < self.engine_pool,
                "health": {
                    str(slot): status
                    for slot, status in sorted(self._engine_health.items())
                },
            }
        )
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GraphServer({self.graph!r}, pool={self.engine_pool}, "
            f"batching={self.batching}, caching={self.caching}, "
            f"version={self._graph_version})"
        )
