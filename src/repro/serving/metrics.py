"""Serving-side metrics: latency percentiles, throughput, batch
occupancy, cache hit rate, rejection accounting.

Complements :class:`repro.runtime.metrics.Metrics` (which accounts for
*engine* work in BSP supersteps) with the quantities a request front end
is judged by.  A :class:`ServingMetrics` is updated from both the
asyncio event loop (admission, completion) and the worker threads that
execute batches, so every mutation takes the lock.

The snapshot is exported through the PR-3 tracing layer as a
``serve.metrics`` instant when the server stops (see
:mod:`repro.serving.server`), so serving runs are inspectable with
``repro trace summarize`` alongside engine spans.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

#: Request states tracked per algorithm.  ``requeued`` is not terminal:
#: a request whose engine failed mid-batch is re-admitted once (graceful
#: degradation) and later lands in a terminal state too.
STATUSES = (
    "ok",
    "cache_hit",
    "rejected_queue_full",
    "rejected_deadline",
    "requeued",
    "error",
)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence (0.0 on
    empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class ServingMetrics:
    """Counters + reservoirs for one server lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.counts: Dict[str, int] = {status: 0 for status in STATUSES}
        self.per_algorithm: Dict[str, Dict[str, int]] = {}
        #: Completed-request latencies in seconds (ok + cache_hit).
        self.latencies: List[float] = []
        #: Client requests served per executed batch (occupancy).
        self.batch_sizes: List[int] = []
        #: Batches whose occupancy was > 1 (actual merges).
        self.merged_batches = 0
        #: Engine supersteps spent, summed over executed batches.
        self.supersteps = 0
        #: Pooled engines that failed mid-batch, and how many of those
        #: were successfully replaced (the difference is permanently lost
        #: capacity — degraded mode).
        self.engine_failures = 0
        self.engines_replaced = 0

    # ------------------------------------------------------------------
    def mark_started(self) -> None:
        with self._lock:
            self.started_at = time.perf_counter()
            self.stopped_at = None

    def mark_stopped(self) -> None:
        with self._lock:
            self.stopped_at = time.perf_counter()

    def record_request(self, algorithm: str, status: str, latency: Optional[float] = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown request status {status!r}")
        with self._lock:
            self.counts[status] += 1
            per = self.per_algorithm.setdefault(
                algorithm, {s: 0 for s in STATUSES}
            )
            per[status] += 1
            if latency is not None and status in ("ok", "cache_hit"):
                self.latencies.append(latency)

    def record_batch(self, occupancy: int, supersteps: int = 0) -> None:
        with self._lock:
            self.batch_sizes.append(int(occupancy))
            if occupancy > 1:
                self.merged_batches += 1
            self.supersteps += int(supersteps)

    def record_engine_failure(self, replaced: bool) -> None:
        with self._lock:
            self.engine_failures += 1
            if replaced:
                self.engines_replaced += 1

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return self.counts["ok"] + self.counts["cache_hit"]

    @property
    def rejected(self) -> int:
        return self.counts["rejected_queue_full"] + self.counts["rejected_deadline"]

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return max(end - self.started_at, 0.0)

    def snapshot(self, cache_stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One JSON-friendly dict with every headline number."""
        with self._lock:
            latencies = sorted(self.latencies)
            batch_sizes = list(self.batch_sizes)
            counts = dict(self.counts)
            per_algorithm = {a: dict(c) for a, c in self.per_algorithm.items()}
            merged = self.merged_batches
            supersteps = self.supersteps
            engine_failures = self.engine_failures
            engines_replaced = self.engines_replaced
        elapsed = self.elapsed()
        completed = counts["ok"] + counts["cache_hit"]
        snap: Dict[str, Any] = {
            "elapsed_s": round(elapsed, 6),
            "completed": completed,
            "throughput_rps": round(completed / elapsed, 3) if elapsed > 0 else 0.0,
            "latency_ms": {
                "p50": round(percentile(latencies, 0.50) * 1e3, 3),
                "p90": round(percentile(latencies, 0.90) * 1e3, 3),
                "p99": round(percentile(latencies, 0.99) * 1e3, 3),
                "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
                "mean": round(sum(latencies) / len(latencies) * 1e3, 3)
                if latencies else 0.0,
            },
            "requests": counts,
            "per_algorithm": per_algorithm,
            "batches": {
                "executed": len(batch_sizes),
                "merged": merged,
                "occupancy_mean": round(sum(batch_sizes) / len(batch_sizes), 3)
                if batch_sizes else 0.0,
                "occupancy_max": max(batch_sizes) if batch_sizes else 0,
            },
            "engine_supersteps": supersteps,
            "engines": {
                "failures": engine_failures,
                "replaced": engines_replaced,
                "lost": engine_failures - engines_replaced,
            },
        }
        if cache_stats is not None:
            snap["cache"] = cache_stats
        return snap
