"""Graph-as-a-service: an async query server over one resident graph.

Public surface:

* :class:`GraphServer` / :class:`QueryResult` — the asyncio front end
  (admission queue, request batching, versioned result cache, metrics).
* :class:`ResultCache` / :func:`canonical_params` — the versioned cache.
* :class:`ServingMetrics` — latency/throughput/occupancy accounting.
* :func:`multi_bfs` / :func:`multi_sssp` / :func:`multi_ppr` — merged
  multi-source kernels used by the batcher (and directly testable).
* :func:`run_load` / :func:`run_load_async` — the closed-loop load
  generator shared by ``repro serve`` and ``benchmarks/bench_serving.py``.

See ``docs/serving.md`` for the architecture.
"""

from repro.serving.cache import ResultCache, canonical_params
from repro.serving.loadgen import WORKLOADS, run_load, run_load_async
from repro.serving.metrics import ServingMetrics, percentile
from repro.serving.multisource import multi_bfs, multi_ppr, multi_sssp, top_k
from repro.serving.registry import ServedAlgorithm, build_registry, resolve
from repro.serving.server import GraphServer, QueryResult

__all__ = [
    "GraphServer",
    "QueryResult",
    "ResultCache",
    "canonical_params",
    "ServingMetrics",
    "percentile",
    "ServedAlgorithm",
    "build_registry",
    "resolve",
    "multi_bfs",
    "multi_sssp",
    "multi_ppr",
    "top_k",
    "WORKLOADS",
    "run_load",
    "run_load_async",
]
