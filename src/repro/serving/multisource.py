"""Multi-source frontier kernels: k merged single-source queries in one
superstep run.

The serving layer's key optimization (ROADMAP "graph-as-a-service") is
to merge k compatible single-source queries (BFS, SSSP, PPR) arriving
inside one batching window into a *single* FLASH run whose frontier is
the union of the per-query frontiers.  The paper's EDGEMAP already
operates over arbitrary vertex subsets, so nothing in the engine
changes: each vertex carries a dict-valued property mapping
``query index -> value``, the merged frontier holds every vertex that
improved for *any* query, and one edge scan advances all queries that
currently pass through the scanned vertex.

Correctness (asserted by ``tests/test_multisource_parity.py``):

* **BFS** — a vertex first receives a finite value for query ``q`` in
  the superstep equal to its hop distance from ``q``'s source, exactly
  as in the independent run; values are integers, so parity is exact.
* **SSSP** — relaxation is monotone and ``min``-folded; the fixpoint is
  the minimum over per-path weight sums, and each path's sum is
  accumulated source-outward in the same order as the independent run,
  so parity is exact even in floating point.
* **PPR** — every query's arithmetic is independent, iteration count is
  fixed, and the dense pull kernel folds in-sources in the same sorted
  order as a single-query run, so the float operation sequence per
  query is identical — parity is bitwise.

The win: per-edge interpreter overhead (view construction, charging,
function dispatch) is paid once per scanned edge instead of once per
(edge, query); queries whose frontiers overlap — the common case on
small-diameter graphs — share those scans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.algorithms.common import INF, local_dict
from repro.core.engine import FlashEngine
from repro.core.primitives import ctrue
from repro.errors import InvalidRequestError

#: Scratch property names (dropped again before the functions return, so
#: pooled serving engines stay clean).
_DIS = "msdis"
_RANK = "msrank"
_ACC = "msacc"


def _check_sources(engine: FlashEngine, sources: Sequence[int]) -> List[int]:
    n = engine.graph.num_vertices
    out = []
    for s in sources:
        s = int(s)
        if not 0 <= s < n:
            raise InvalidRequestError(f"source {s} out of range (|V|={n})")
        out.append(s)
    if not out:
        raise InvalidRequestError("need at least one source")
    return out


# ---------------------------------------------------------------------------
# Multi-source BFS
# ---------------------------------------------------------------------------
def _bfs_improves(s, d):
    ddis = d.msdis
    for q, dist in s.msdis.items():
        if dist + 1 < ddis.get(q, INF):
            return True
    return False


def _bfs_update(s, d):
    tgt = local_dict(d, _DIS)
    for q, dist in s.msdis.items():
        nd = dist + 1
        if nd < tgt.get(q, INF):
            tgt[q] = nd
    return d


def _min_reduce(t, d):
    acc = local_dict(d, _DIS)
    for q, dist in t.msdis.items():
        if dist < acc.get(q, INF):
            acc[q] = dist
    return d


def multi_bfs(engine: FlashEngine, sources: Sequence[int]) -> List[List[float]]:
    """Hop distances from each source, one full column per requested
    source (duplicates allowed — they share one merged query)."""
    sources = _check_sources(engine, sources)
    distinct = sorted(set(sources))
    qid = {s: i for i, s in enumerate(distinct)}
    n = engine.graph.num_vertices
    engine.add_property(_DIS, factory=dict)
    try:
        def init(v):
            local_dict(v, _DIS)[qid[v.id]] = 0
            return v

        U = engine.vertex_map(engine.subset(distinct), None, init, label="mbfs:init")
        while engine.size(U) != 0:
            U = engine.edge_map(
                U, engine.E, _bfs_improves, _bfs_update, ctrue, _min_reduce,
                label="mbfs:step",
            )
        column = engine.flashware.state.column(_DIS)
        return [
            [column[v].get(qid[s], INF) for v in range(n)] for s in sources
        ]
    finally:
        engine.drop_property(_DIS)


# ---------------------------------------------------------------------------
# Multi-source SSSP (frontier Bellman-Ford)
# ---------------------------------------------------------------------------
def multi_sssp(engine: FlashEngine, sources: Sequence[int]) -> List[List[float]]:
    """Shortest-path distances from each source (weights default to 1.0
    on unweighted graphs, as in :func:`repro.algorithms.sssp`)."""
    sources = _check_sources(engine, sources)
    distinct = sorted(set(sources))
    qid = {s: i for i, s in enumerate(distinct)}
    graph = engine.graph
    n = graph.num_vertices
    engine.add_property(_DIS, factory=dict)

    def improves(s, d):
        w = graph.weight(s.id, d.id)
        ddis = d.msdis
        for q, dist in s.msdis.items():
            if dist + w < ddis.get(q, INF):
                return True
        return False

    def relax(s, d):
        w = graph.weight(s.id, d.id)
        tgt = local_dict(d, _DIS)
        for q, dist in s.msdis.items():
            nd = dist + w
            if nd < tgt.get(q, INF):
                tgt[q] = nd
        return d

    try:
        def init(v):
            local_dict(v, _DIS)[qid[v.id]] = 0.0
            return v

        U = engine.vertex_map(engine.subset(distinct), None, init, label="msssp:init")
        while engine.size(U) != 0:
            U = engine.edge_map(
                U, engine.E, improves, relax, ctrue, _min_reduce,
                label="msssp:relax",
            )
        column = engine.flashware.state.column(_DIS)
        return [
            [column[v].get(qid[s], INF) for v in range(n)] for s in sources
        ]
    finally:
        engine.drop_property(_DIS)


# ---------------------------------------------------------------------------
# Multi-query personalized PageRank
# ---------------------------------------------------------------------------
def multi_ppr(
    engine: FlashEngine,
    seed_sets: Sequence[Iterable[int]],
    damping: float = 0.85,
    iters: int = 10,
) -> List[List[float]]:
    """Fixed-iteration PPR for k seed sets in one run; each returned
    column is normalized to sum to 1, matching
    :func:`repro.algorithms.personalized_pagerank` with ``tolerance=0``
    and ``max_iters=iters`` bit-for-bit."""
    n = engine.graph.num_vertices
    restarts: List[Dict[int, float]] = []
    for seeds in seed_sets:
        seed_list = _check_sources(engine, list(seeds))
        distinct = set(seed_list)
        restarts.append({s: 1.0 / len(distinct) for s in distinct})
    k = len(restarts)
    if k == 0:
        raise InvalidRequestError("need at least one PPR query")

    engine.add_property(_RANK, factory=dict)
    engine.add_property(_ACC, factory=dict)

    def init(v):
        rank = local_dict(v, _RANK)
        for q in range(k):
            rank[q] = 1.0 / max(n, 1)
        return v

    def scatter(s, d):
        acc = local_dict(d, _ACC)
        out_deg = s.out_deg
        for q, r in s.msrank.items():
            share = r / out_deg if out_deg else 0.0
            acc[q] = acc.get(q, 0.0) + share
        return d

    def r_sum(t, d):
        acc = local_dict(d, _ACC)
        for q, val in t.msacc.items():
            acc[q] = acc.get(q, 0.0) + val
        return d

    def apply(v):
        acc = v.msacc
        rank = local_dict(v, _RANK)
        for q in range(k):
            rank[q] = (1.0 - damping) * restarts[q].get(v.id, 0.0) \
                + damping * acc.get(q, 0.0)
        local_dict(v, _ACC).clear()
        return v

    try:
        engine.vertex_map(engine.V, None, init, label="mppr:init")
        for _ in range(iters):
            engine.edge_map(
                engine.V, engine.E, ctrue, scatter, ctrue, r_sum,
                label="mppr:scatter",
            )
            engine.vertex_map(engine.V, None, apply, label="mppr:apply")
        column = engine.flashware.state.column(_RANK)
        results: List[List[float]] = []
        for q in range(k):
            ranks = [column[v].get(q, 0.0) for v in range(n)]
            total = sum(ranks)
            if total > 0:
                ranks = [r / total for r in ranks]
            results.append(ranks)
        return results
    finally:
        engine.drop_property(_RANK)
        engine.drop_property(_ACC)


def top_k(ranks: Sequence[float], k: int) -> List[Tuple[int, float]]:
    """The ``k`` highest-scoring vertices as ``(vertex, score)`` pairs,
    ties broken by vertex id (deterministic)."""
    order = sorted(range(len(ranks)), key=lambda v: (-ranks[v], v))
    return [(v, ranks[v]) for v in order[: max(int(k), 0)]]
