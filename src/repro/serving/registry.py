"""The catalog of served queries.

Each :class:`ServedAlgorithm` describes one request type end to end:
parameter validation/canonicalization (fail fast at admission, before a
slot is spent), how to execute one request, and — where applicable —
how to execute a *merged batch* of them or derive them from a shared
cached artifact:

* **batchable** (``bfs-from-source``, ``sssp``, ``ppr-for-user``) —
  requests differing only in their source merge into one multi-source
  run (:mod:`repro.serving.multisource`); ``batch_key`` decides
  compatibility (all parameters except the source must match).
* **derived** (``pagerank-top-k``, ``cc-membership``) — the expensive
  whole-graph artifact (full rank vector, component labels) is computed
  once per graph version and cached under ``artifact``/``artifact_key``;
  each request only runs the cheap ``extract`` step.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro import algorithms as A
from repro.core.engine import FlashEngine
from repro.errors import InvalidRequestError, UnknownAlgorithmError
from repro.serving.cache import canonical_params
from repro.serving.multisource import multi_bfs, multi_ppr, multi_sssp, top_k


def _vertex(value: Any, n: int, what: str) -> int:
    try:
        vid = int(value)
    except (TypeError, ValueError):
        raise InvalidRequestError(f"{what} must be an integer, got {value!r}") from None
    if not 0 <= vid < n:
        raise InvalidRequestError(f"{what} {vid} out of range (|V|={n})")
    return vid


def _positive_int(value: Any, what: str) -> int:
    try:
        out = int(value)
    except (TypeError, ValueError):
        raise InvalidRequestError(f"{what} must be an integer, got {value!r}") from None
    if out < 1:
        raise InvalidRequestError(f"{what} must be >= 1, got {out}")
    return out


def _damping(value: Any) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise InvalidRequestError(f"damping must be a float, got {value!r}") from None
    if not 0.0 < out < 1.0:
        raise InvalidRequestError(f"damping must be in (0, 1), got {out}")
    return out


@dataclass
class ServedAlgorithm:
    """One request type the server knows how to answer."""

    name: str
    defaults: Dict[str, Any]
    validate: Callable[[Dict[str, Any], int], Dict[str, Any]]
    #: Batchable queries: merged multi-source execution.
    batchable: bool = False
    source_param: Optional[str] = None
    run_single: Optional[Callable[[FlashEngine, Dict[str, Any]], Any]] = None
    run_multi: Optional[Callable[[FlashEngine, List[Dict[str, Any]]], List[Any]]] = None
    #: Derived queries: shared artifact + cheap per-request extraction.
    artifact: Optional[str] = None
    artifact_params: Tuple[str, ...] = field(default_factory=tuple)
    compute_artifact: Optional[Callable[[FlashEngine, Dict[str, Any]], Any]] = None
    extract: Optional[Callable[[Any, Dict[str, Any]], Any]] = None

    def canonicalize(self, params: Optional[Dict[str, Any]], num_vertices: int) -> Dict[str, Any]:
        params = dict(params or {})
        unknown = set(params) - set(self.defaults) - {"seed"}
        if unknown:
            raise InvalidRequestError(
                f"{self.name}: unknown parameter(s) {sorted(unknown)}; "
                f"expected any of {sorted(self.defaults)}"
            )
        merged = {**self.defaults, **params}
        return self.validate(merged, num_vertices)

    def cache_params(self, params: Dict[str, Any]) -> Hashable:
        return canonical_params(params)

    def batch_key(self, params: Dict[str, Any]) -> Hashable:
        """Requests with equal batch keys may merge into one run."""
        if not self.batchable:
            return None
        shared = {k: v for k, v in params.items() if k != self.source_param}
        return (self.name, canonical_params(shared))

    def artifact_key(self, params: Dict[str, Any]) -> Hashable:
        return canonical_params({k: params[k] for k in self.artifact_params})


# ---------------------------------------------------------------------------
# bfs-from-source / sssp
# ---------------------------------------------------------------------------
def _validate_source_only(params: Dict[str, Any], n: int) -> Dict[str, Any]:
    return {"source": _vertex(params["source"], n, "source")}


def _bfs_single(engine: FlashEngine, params: Dict[str, Any]) -> List[float]:
    return A.bfs(engine, root=params["source"]).values


def _bfs_multi(engine: FlashEngine, batch: List[Dict[str, Any]]) -> List[List[float]]:
    return multi_bfs(engine, [p["source"] for p in batch])


def _sssp_single(engine: FlashEngine, params: Dict[str, Any]) -> List[float]:
    return A.sssp(engine, root=params["source"]).values


def _sssp_multi(engine: FlashEngine, batch: List[Dict[str, Any]]) -> List[List[float]]:
    return multi_sssp(engine, [p["source"] for p in batch])


# ---------------------------------------------------------------------------
# ppr-for-user
# ---------------------------------------------------------------------------
def _validate_ppr(params: Dict[str, Any], n: int) -> Dict[str, Any]:
    seeds = params.get("seeds")
    if "seed" in params and params["seed"] is not None:
        if seeds not in (None, ()):
            raise InvalidRequestError("pass either 'seed' or 'seeds', not both")
        seeds = [params["seed"]]
    if not seeds:
        raise InvalidRequestError("ppr-for-user needs a 'seed' or non-empty 'seeds'")
    canonical = tuple(sorted({_vertex(s, n, "seed") for s in seeds}))
    return {
        "seeds": canonical,
        "damping": _damping(params["damping"]),
        "iters": _positive_int(params["iters"], "iters"),
        "k": _positive_int(params["k"], "k"),
    }


def _ppr_single(engine: FlashEngine, params: Dict[str, Any]):
    result = A.personalized_pagerank(
        engine,
        params["seeds"],
        damping=params["damping"],
        max_iters=params["iters"],
        tolerance=0.0,
    )
    return top_k(result.values, params["k"])


def _ppr_multi(engine: FlashEngine, batch: List[Dict[str, Any]]):
    columns = multi_ppr(
        engine,
        [p["seeds"] for p in batch],
        damping=batch[0]["damping"],
        iters=batch[0]["iters"],
    )
    return [top_k(col, p["k"]) for col, p in zip(columns, batch)]


# ---------------------------------------------------------------------------
# pagerank-top-k (derived from the full rank vector)
# ---------------------------------------------------------------------------
def _validate_pagerank(params: Dict[str, Any], n: int) -> Dict[str, Any]:
    return {
        "k": _positive_int(params["k"], "k"),
        "damping": _damping(params["damping"]),
        "iters": _positive_int(params["iters"], "iters"),
    }


def _pagerank_artifact(engine: FlashEngine, params: Dict[str, Any]) -> List[float]:
    return A.pagerank(
        engine, damping=params["damping"], max_iters=params["iters"], tolerance=0.0
    ).values


def _pagerank_extract(ranks: List[float], params: Dict[str, Any]):
    return top_k(ranks, params["k"])


# ---------------------------------------------------------------------------
# cc-membership (derived from the component labeling)
# ---------------------------------------------------------------------------
def _validate_cc(params: Dict[str, Any], n: int) -> Dict[str, Any]:
    return {"vertex": _vertex(params["vertex"], n, "vertex")}


def _cc_artifact(engine: FlashEngine, params: Dict[str, Any]):
    labels = A.cc_opt(engine).values
    return {"labels": labels, "sizes": Counter(labels)}


def _cc_extract(artifact, params: Dict[str, Any]):
    vertex = params["vertex"]
    label = artifact["labels"][vertex]
    return {
        "vertex": vertex,
        "component": label,
        "size": artifact["sizes"][label],
    }


# ---------------------------------------------------------------------------
def build_registry() -> Dict[str, ServedAlgorithm]:
    """A fresh name -> descriptor map (each server owns its own)."""
    algorithms = [
        ServedAlgorithm(
            name="bfs-from-source",
            defaults={"source": 0},
            validate=_validate_source_only,
            batchable=True,
            source_param="source",
            run_single=_bfs_single,
            run_multi=_bfs_multi,
        ),
        ServedAlgorithm(
            name="sssp",
            defaults={"source": 0},
            validate=_validate_source_only,
            batchable=True,
            source_param="source",
            run_single=_sssp_single,
            run_multi=_sssp_multi,
        ),
        ServedAlgorithm(
            name="ppr-for-user",
            defaults={"seeds": (), "damping": 0.85, "iters": 10, "k": 10},
            validate=_validate_ppr,
            batchable=True,
            source_param="seeds",
            run_single=_ppr_single,
            run_multi=_ppr_multi,
        ),
        ServedAlgorithm(
            name="pagerank-top-k",
            defaults={"k": 10, "damping": 0.85, "iters": 10},
            validate=_validate_pagerank,
            artifact="pagerank-ranks",
            artifact_params=("damping", "iters"),
            compute_artifact=_pagerank_artifact,
            extract=_pagerank_extract,
        ),
        ServedAlgorithm(
            name="cc-membership",
            defaults={"vertex": 0},
            validate=_validate_cc,
            artifact="cc-labels",
            compute_artifact=_cc_artifact,
            extract=_cc_extract,
        ),
    ]
    return {algo.name: algo for algo in algorithms}


def resolve(registry: Dict[str, ServedAlgorithm], name: str) -> ServedAlgorithm:
    try:
        return registry[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; served: {', '.join(sorted(registry))}"
        ) from None
