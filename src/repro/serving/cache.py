"""Versioned result cache for the serving layer.

Entries are keyed by ``(graph_version, algorithm, params)`` — the graph
version is *part of the key*, so a stale entry can never be served for a
newer graph: after ``GraphServer.bump_graph_version()`` every lookup
misses until the result is recomputed against the new version.  Explicit
invalidation (:meth:`ResultCache.invalidate`) additionally *removes*
entries, bounding memory after updates.

The cache is LRU-bounded and thread-safe (the server executes batches on
worker threads while the asyncio front end probes on the event loop).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

CacheKey = Tuple[int, str, Hashable]

#: Distinguishes "no entry" from a cached ``None`` result.
_MISS = object()


def canonical_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """A hashable, order-independent form of a request's parameters.
    Lists/sets (e.g. PPR seed sets) become sorted tuples."""
    items = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, (list, set, frozenset)):
            value = tuple(sorted(value))
        items.append((name, value))
    return tuple(items)


class ResultCache:
    """LRU cache of query results keyed by (graph-version, algorithm,
    canonical params)."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    # ------------------------------------------------------------------
    def _key(self, graph_version: int, algorithm: str, params: Hashable) -> CacheKey:
        return (int(graph_version), algorithm, params)

    def get(self, graph_version: int, algorithm: str, params: Hashable) -> Any:
        """The cached result, or ``None`` on a miss (use :meth:`lookup`
        when ``None`` is a legal cached value)."""
        value, hit = self.lookup(graph_version, algorithm, params)
        return value if hit else None

    def lookup(
        self, graph_version: int, algorithm: str, params: Hashable
    ) -> Tuple[Any, bool]:
        """``(value, hit)`` — and LRU-touch the entry on a hit."""
        key = self._key(graph_version, algorithm, params)
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return None, False
            self._entries.move_to_end(key)
            self.hits += 1
            return value, True

    def put(self, graph_version: int, algorithm: str, params: Hashable, value: Any) -> None:
        key = self._key(graph_version, algorithm, params)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    def invalidate(
        self,
        graph_version: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> int:
        """Remove matching entries and return how many were dropped.

        ``graph_version=None`` matches every version (e.g. dropping all
        cached results of one algorithm); ``algorithm=None`` matches
        every algorithm (e.g. purging everything computed against a
        superseded graph version).  Both ``None`` empties the cache.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if (graph_version is None or key[0] == graph_version)
                and (algorithm is None or key[1] == algorithm)
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidated += len(doomed)
            return len(doomed)

    def purge_older_than(self, graph_version: int) -> int:
        """Remove every entry computed against a version strictly older
        than ``graph_version`` (bounded memory after graph updates)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] < graph_version]
            for key in doomed:
                del self._entries[key]
            self.invalidated += len(doomed)
            return len(doomed)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
