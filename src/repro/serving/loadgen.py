"""Closed-loop load generator for :class:`~repro.serving.server.GraphServer`.

Each simulated client owns a deterministic RNG and issues its requests
*sequentially* (closed loop: the next request is not sent until the
previous one resolves), so offered load scales with client concurrency
exactly the way the serving benchmark sweeps it.  The generator is
shared by ``repro serve`` (CLI) and ``benchmarks/bench_serving.py``.

A workload is a ``{algorithm: weight}`` mix.  Source-parameterized
queries draw their source from a small "hot set" with probability
``hot_fraction`` (this is what gives the result cache something to hit)
and uniformly at random otherwise.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional

from repro.errors import DeadlineExpiredError, QueueFullError, ServingError
from repro.graph.graph import Graph
from repro.runtime.tracing import Tracer
from repro.serving.metrics import percentile
from repro.serving.server import GraphServer

#: Named request mixes.  ``batchable`` is the mix the batching benchmark
#: sweeps (single-source queries only, so every request can merge);
#: ``mixed`` adds the derived whole-graph queries.
WORKLOADS: Dict[str, Dict[str, float]] = {
    "batchable": {"bfs-from-source": 0.6, "sssp": 0.4},
    "bfs": {"bfs-from-source": 1.0},
    "sssp": {"sssp": 1.0},
    "ppr": {"ppr-for-user": 1.0},
    "mixed": {
        "bfs-from-source": 0.35,
        "sssp": 0.25,
        "ppr-for-user": 0.2,
        "pagerank-top-k": 0.1,
        "cc-membership": 0.1,
    },
}


def _pick(rng: random.Random, mix: Dict[str, float]) -> str:
    total = sum(mix.values())
    roll = rng.random() * total
    acc = 0.0
    for name, weight in mix.items():
        acc += weight
        if roll <= acc:
            return name
    return name  # pragma: no cover - float edge


def _make_params(
    rng: random.Random,
    algorithm: str,
    num_vertices: int,
    hot: List[int],
    hot_fraction: float,
) -> Dict[str, Any]:
    def source() -> int:
        if hot and rng.random() < hot_fraction:
            return rng.choice(hot)
        return rng.randrange(num_vertices)

    if algorithm in ("bfs-from-source", "sssp"):
        return {"source": source()}
    if algorithm == "ppr-for-user":
        return {"seed": source()}
    if algorithm == "pagerank-top-k":
        return {"k": 10}
    if algorithm == "cc-membership":
        return {"vertex": source()}
    return {}


async def _client(
    server: GraphServer,
    client_id: int,
    num_requests: int,
    mix: Dict[str, float],
    seed: int,
    hot: List[int],
    hot_fraction: float,
    deadline: Optional[float],
    latencies: List[float],
    outcomes: Dict[str, int],
) -> None:
    rng = random.Random((seed << 16) ^ client_id)
    n = server.graph.num_vertices
    for _ in range(num_requests):
        algorithm = _pick(rng, mix)
        params = _make_params(rng, algorithm, n, hot, hot_fraction)
        t0 = time.perf_counter()
        try:
            result = await server.submit(algorithm, params, deadline=deadline)
        except QueueFullError:
            outcomes["rejected_queue_full"] = outcomes.get("rejected_queue_full", 0) + 1
        except DeadlineExpiredError:
            outcomes["rejected_deadline"] = outcomes.get("rejected_deadline", 0) + 1
        except ServingError:
            outcomes["error"] = outcomes.get("error", 0) + 1
        else:
            latencies.append(time.perf_counter() - t0)
            status = "cache_hit" if result.cached else "ok"
            outcomes[status] = outcomes.get(status, 0) + 1


async def run_load_async(
    graph: Graph,
    *,
    clients: int = 8,
    requests_per_client: int = 8,
    workload: str = "batchable",
    mix: Optional[Dict[str, float]] = None,
    batching: bool = True,
    caching: bool = True,
    batch_window: float = 0.002,
    max_batch: int = 16,
    queue_depth: Optional[int] = None,
    engine_pool: int = 2,
    num_workers: int = 4,
    backend: Optional[str] = None,
    deadline: Optional[float] = None,
    hot_set_size: int = 4,
    hot_fraction: float = 0.5,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Drive ``clients`` closed-loop clients against a fresh server and
    return a JSON-friendly report (client-observed latencies + the
    server's own metrics snapshot)."""
    if mix is None:
        mix = WORKLOADS[workload]
    depth = queue_depth if queue_depth is not None else max(2 * clients, 8)
    rng = random.Random(seed)
    n = graph.num_vertices
    hot = sorted(rng.sample(range(n), min(hot_set_size, n))) if n else []
    latencies: List[float] = []
    outcomes: Dict[str, int] = {}
    server = GraphServer(
        graph,
        num_workers=num_workers,
        engine_pool=engine_pool,
        backend=backend,
        queue_depth=depth,
        batch_window=batch_window,
        max_batch=max_batch,
        batching=batching,
        caching=caching,
        tracer=tracer,
    )
    async with server:
        t0 = time.perf_counter()
        await asyncio.gather(
            *[
                _client(
                    server,
                    cid,
                    requests_per_client,
                    mix,
                    seed,
                    hot,
                    hot_fraction,
                    deadline,
                    latencies,
                    outcomes,
                )
                for cid in range(clients)
            ]
        )
        wall = time.perf_counter() - t0
        snapshot = server.metrics_snapshot()
    ordered = sorted(latencies)
    completed = len(ordered)
    return {
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "workload": workload if mix is WORKLOADS.get(workload) else "custom",
            "mix": dict(mix),
            "batching": batching,
            "caching": caching,
            "batch_window_s": batch_window,
            "max_batch": max_batch,
            "queue_depth": depth,
            "engine_pool": engine_pool,
            "num_workers": num_workers,
            "backend": backend,
            "deadline_s": deadline,
            "hot_set_size": hot_set_size,
            "hot_fraction": hot_fraction,
            "seed": seed,
        },
        "wall_s": round(wall, 6),
        "completed": completed,
        "throughput_rps": round(completed / wall, 3) if wall > 0 else 0.0,
        "client_latency_ms": {
            "p50": round(percentile(ordered, 0.50) * 1e3, 3),
            "p90": round(percentile(ordered, 0.90) * 1e3, 3),
            "p99": round(percentile(ordered, 0.99) * 1e3, 3),
            "max": round(ordered[-1] * 1e3, 3) if ordered else 0.0,
        },
        "outcomes": outcomes,
        "server": snapshot,
    }


def run_load(graph: Graph, **kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_load_async`."""
    return asyncio.run(run_load_async(graph, **kwargs))
