"""Link prediction & semi-supervised labeling — exercising the catalog
extensions: Jaccard similarity over two-hop virtual edges, personalized
PageRank from seed users, and label spreading from a few ground-truth
labels.

Run with:  python examples/link_prediction.py
"""

from repro import load_dataset
from repro.algorithms import jaccard_similarity, lpa_semi, personalized_pagerank


def main() -> None:
    graph = load_dataset("OR", scale=0.15)
    print(f"social graph: {graph}")

    # Who should become friends?  Highest-Jaccard non-adjacent pairs.
    similarity = jaccard_similarity(graph, top_k=5)
    print("\ntop link recommendations (two-hop pairs, Jaccard):")
    for (u, v), score in similarity.extra["recommendations"]:
        print(f"  {u:4d} -- {v:4d}   J = {score:.3f}")

    # Rank the graph from the perspective of two seed users.
    seeds = [0, 1]
    ppr = personalized_pagerank(graph, seeds, max_iters=40)
    ranked = sorted(range(graph.num_vertices), key=lambda v: -ppr.values[v])
    top = [v for v in ranked if v not in seeds][:5]
    print(f"\npersonalized PageRank from seeds {seeds}: top suggestions {top}")

    # Spread two ground-truth community labels to everyone reachable.
    labels = lpa_semi(graph, {seeds[0]: 100, ranked[-1]: 200})
    from collections import Counter

    counts = Counter(labels.values)
    print(f"\nlabel spreading covered {labels.extra['covered']}/{graph.num_vertices} "
          f"vertices in {labels.iterations} rounds: {dict(counts)}")


if __name__ == "__main__":
    main()
