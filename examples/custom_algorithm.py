"""Writing your own FLASH algorithm — the programming model up close.

Implements *k-hop dominators*: find a small vertex set whose k-hop
neighborhoods cover the graph.  The program exercises every part of the
paper's interface: vertex properties, VERTEXMAP filters, EDGEMAP with
condition/reduce functions, `bind` for globals, vertex-set algebra, and
a beyond-neighborhood pass over two-hop virtual edges (`join(E, E)`).

Run with:  python examples/custom_algorithm.py
"""

from repro import FlashEngine, bind, ctrue, join, load_dataset


def k_hop_dominators(engine: FlashEngine, k: int = 2):
    """Greedy dominator selection: repeatedly take the uncovered vertex
    with the most uncovered k-hop neighbors, then mark its k-hop
    neighborhood covered (here k == 2, via join(E, E))."""
    engine.add_property("covered", False)
    engine.add_property("gain", 0)

    def uncovered(v):
        return v.covered == False  # noqa: E712 — paper listing style

    def count_gain(s, d):
        d.gain = d.gain + 1
        return d

    def add_gain(t, d):
        d.gain = d.gain + t.gain
        return d

    def reset(v):
        v.gain = 0
        return v

    def cover(s, d):
        d.covered = True
        return d

    def keep(t, d):
        return t

    def is_best(v, best_id):
        return v.id == best_id

    two_hop = join(engine.E, engine.E)
    dominators = []
    remaining = engine.vertex_map(engine.V, uncovered)
    while engine.size(remaining) != 0:
        # Each uncovered vertex scores how many uncovered vertices sit
        # within two hops of it (including direct neighbors).
        engine.vertex_map(engine.V, ctrue, reset)
        engine.edge_map(remaining, engine.E, ctrue, count_gain, uncovered, add_gain)
        engine.edge_map(remaining, two_hop, ctrue, count_gain, uncovered, add_gain)
        gains = engine.values("gain")
        best = max(remaining, key=lambda v: (gains[v], -v))
        dominators.append(best)

        # Mark the winner and its two-hop ball covered.
        chosen = engine.subset([best])
        engine.vertex_map(chosen, ctrue, lambda v: setattr(v, "covered", True) or v)
        engine.edge_map(chosen, engine.E, ctrue, cover, uncovered, keep)
        engine.edge_map(chosen, two_hop, ctrue, cover, uncovered, keep)
        remaining = engine.vertex_map(engine.V, uncovered)
    return dominators


def main() -> None:
    graph = load_dataset("OR", scale=0.08)
    engine = FlashEngine(graph, num_workers=4)
    dominators = k_hop_dominators(engine)
    print(f"graph: {graph}")
    print(f"2-hop dominators: {dominators}")
    print(f"set size: {len(dominators)} / {graph.num_vertices} vertices")
    print(f"supersteps used: {engine.metrics.num_supersteps}")
    covered = engine.values("covered")
    assert all(covered), "every vertex must be covered"
    print("coverage check passed")


if __name__ == "__main__":
    main()
