"""Compare all five frameworks on one workload — a miniature of the
paper's Table V rows, including the inexpressible cells.

Run with:  python examples/framework_comparison.py [app]
"""

import sys

from repro import load_dataset
from repro.analysis.tables import format_table
from repro.runtime.cluster import ClusterSpec
from repro.runtime.costmodel import CostModel
from repro.suite import APPS, FRAMEWORKS, prepare_graph, run_app


def main(app: str = "mis") -> None:
    if app not in APPS:
        raise SystemExit(f"unknown app {app!r}; choose from {APPS}")
    graph = prepare_graph(app, load_dataset("OR", scale=0.15, directed=(app == "scc")))
    model = CostModel()
    print(f"app: {app}, graph: {graph}\n")

    rows = []
    for framework in FRAMEWORKS:
        workers = 1 if framework == "ligra" else 4
        run = run_app(framework, app, graph, num_workers=workers)
        if run is None:
            rows.append([framework, "-", "-", "-", "inexpressible"])
            continue
        cluster = ClusterSpec(nodes=workers, cores_per_node=32)
        cost = run.cost(cluster, model)
        rows.append(
            [
                framework,
                run.metrics.num_supersteps,
                run.metrics.total_ops,
                run.metrics.total_messages,
                f"{cost.total * 1e3:.3f}ms",
            ]
        )
    print(format_table(["framework", "supersteps", "ops", "messages", "sim. time"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mis")
