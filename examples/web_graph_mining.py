"""Web graph mining: ranking, core structure and pattern counting on a
hub-heavy web crawl analogue.

Run with:  python examples/web_graph_mining.py
"""

from repro import load_dataset
from repro.algorithms import gc, kcore_opt, pagerank, rc


def main() -> None:
    graph = load_dataset("UK", scale=0.3)
    print(f"web graph: {graph}")

    # Page importance.
    ranks = pagerank(graph, max_iters=30)
    best = max(graph.vertices(), key=lambda v: ranks.values[v])
    print(f"\nPageRank: converged in {ranks.iterations} iterations; "
          f"top page {best} (rank {ranks.values[best]:.4f}, degree {graph.degree(best)})")

    # Core decomposition reveals the crawl's dense nucleus.
    cores = kcore_opt(graph)
    max_core = max(cores.values)
    nucleus = sum(1 for c in cores.values if c == max_core)
    print(f"k-core: degeneracy {max_core}, nucleus of {nucleus} pages "
          f"({cores.iterations} refinement rounds)")

    # Rectangles (bipartite-like link patterns) need two-hop virtual
    # edges — the beyond-neighborhood capability unique to FLASH.
    rectangles = rc(graph)
    print(f"rectangles (C4): {rectangles.extra['total']}")

    # A crawl-scheduling coloring: same-color pages share no link.
    colors = gc(graph)
    print(f"greedy coloring: {colors.extra['num_colors']} colors "
          f"in {colors.iterations} rounds")


if __name__ == "__main__":
    main()
