"""Quickstart: load a dataset, run two algorithms, inspect the runtime.

Run with:  python examples/quickstart.py
"""

from repro import ClusterSpec, CostModel, load_dataset
from repro.algorithms import bfs, cc_opt


def main() -> None:
    # A scaled-down analogue of the paper's soc-orkut graph.
    graph = load_dataset("OR", scale=0.2)
    print(f"graph: {graph}")

    # Breadth-first search from vertex 0 (paper Algorithm 2).
    result = bfs(graph, root=0, num_workers=4)
    reachable = sum(1 for d in result.values if d != float("inf"))
    print(f"\nBFS: reached {reachable}/{graph.num_vertices} vertices "
          f"in {result.iterations} supersteps")
    print(f"     metrics: {result.engine.metrics.summary()}")

    # Optimized connected components (paper Algorithm 10): hook-and-jump
    # over virtual parent-pointer edges.
    result = cc_opt(graph, num_workers=4)
    components = len(set(result.values))
    print(f"\nCC-opt: {components} component(s) in {result.iterations} rounds")

    # Simulated execution cost on the paper's 4-node, 32-core cluster.
    cost = CostModel().estimate(result.engine.metrics, ClusterSpec(nodes=4, cores_per_node=32))
    print(f"        simulated time: {cost.total * 1e3:.3f} ms "
          f"(compute {cost.fractions()['compute']:.0%}, "
          f"communication {cost.fractions()['communication']:.0%})")


if __name__ == "__main__":
    main()
