"""Profiling walkthrough: trace a connected-components run and break
its cost down per primitive and per superstep.

The structured tracing layer (docs/observability.md) records every
superstep, barrier and recovery action as a span with wall-clock timing
plus the superstep's accounting fields. This example records a trace of
CC on a generated graph, prints the same report as
``python -m repro trace summarize``, and then walks the spans
programmatically.

Run with:  python examples/profiling_walkthrough.py
"""

from repro import random_graph
from repro.runtime.tracing import (
    RingBufferSink,
    Tracer,
    format_trace_summary,
    mode_flips,
    superstep_spans,
    summarize_by_primitive,
)
from repro.suite import run_app


def main() -> None:
    graph = random_graph(600, 3000, seed=3)
    print(f"graph: {graph}")

    # Record the run. run_app installs the tracer ambiently, so every
    # engine built inside — including both CC variants the suite tries
    # (basic and optimized; Metrics reports only the winner, the trace
    # keeps both) — emits into the same ring buffer.
    sink = RingBufferSink(capacity=65536)
    run = run_app("flash", "cc", graph, num_workers=4,
                  tracer=Tracer(sink))
    spans = sink.spans()
    components = len(set(run.values))
    print(f"CC: {components} component(s), "
          f"{run.metrics.num_supersteps} supersteps reported, "
          f"{len(superstep_spans(spans))} superstep spans traced "
          f"(both variants)\n")

    # 1. The canned report: per-primitive cost table, most expensive
    #    supersteps, dense/sparse mode flips.
    print(format_trace_summary(spans, top=5))

    # 2. The same data, programmatically: where did the wall time go?
    print("\nper-primitive wall-time share:")
    total = sum(s.dur or 0.0 for s in superstep_spans(spans))
    for row in summarize_by_primitive(spans):
        print(f"  {row['primitive']:14s} {row['spans']:3d} spans  "
              f"{row['ops']:7d} ops  {row['messages']:6d} msgs  "
              f"{row['wall_s'] / total:6.1%}")

    # 3. Per-superstep breakdown of the expensive phase: EDGEMAP steps,
    #    with frontier size against ops — the dense/sparse story.
    print("\nEDGEMAP supersteps (frontier -> ops, by mode):")
    for s in superstep_spans(spans):
        if s.args.get("primitive") != "EDGEMAP":
            continue
        print(f"  seq {s.args['seq']:3d}  {s.args.get('mode', '?'):6s} "
              f"label={s.args.get('label', ''):12s} "
              f"frontier={s.args.get('frontier_in', 0):4d} "
              f"ops={s.args['ops']:6d} "
              f"wall={(s.dur or 0.0) * 1e6:8.1f} us")

    flips = mode_flips(spans)
    if flips:
        print(f"\nthe adaptive EDGEMAP changed mode {len(flips)} time(s); "
              f"first flip at superstep {flips[0]['seq']} "
              f"({flips[0]['from']} -> {flips[0]['to']} at frontier "
              f"{flips[0]['frontier_in']})")


if __name__ == "__main__":
    main()
