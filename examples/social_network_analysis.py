"""Social network analysis — the workload class the paper's intro
motivates: centrality, communities, cohesive subgroups and matchings on
a skewed-degree social graph.

Run with:  python examples/social_network_analysis.py
"""

from repro import load_dataset
from repro.algorithms import bc, cl, lpa, mis, mm_opt, tc


def top(values, k=5):
    order = sorted(range(len(values)), key=lambda v: -values[v])[:k]
    return [(v, round(values[v], 2)) for v in order]


def main() -> None:
    graph = load_dataset("OR", scale=0.25)
    print(f"social graph: {graph} (max degree {max(graph.degrees())})")

    # Who brokers information?  Single-source Brandes dependencies from a
    # hub give a cheap centrality sketch (paper Algorithm 3).
    hub = max(graph.vertices(), key=graph.degree)
    centrality = bc(graph, root=hub)
    print(f"\nbetweenness contributions from hub {hub}: top {top(centrality.values)}")

    # Communities by label propagation (paper Algorithm 20).
    communities = lpa(graph, max_iters=10)
    print(f"communities found: {communities.extra['num_labels']}")

    # Cohesion: triangles and 4-cliques (Algorithms 14 and 23).
    triangles = tc(graph)
    cliques = cl(graph, k=4)
    print(f"triangles: {triangles.extra['total']}, 4-cliques: {cliques.extra['total']}")

    # A maximal set of mutually non-adjacent users (e.g. for A/B test
    # isolation), and a maximal matching (e.g. for peer pairing).
    independent = mis(graph)
    matching = mm_opt(graph)
    print(f"maximal independent set: {independent.extra['size']} users")
    print(f"maximal matching: {len(matching.extra['matching'])} pairs "
          f"(optimized variant, {matching.iterations} rounds)")


if __name__ == "__main__":
    main()
