"""Road network analytics — the large-diameter regime where the paper's
expressiveness pays off most: the optimized CC converges in a handful of
rounds where label propagation needs thousands (Table V's US/EU rows).

Run with:  python examples/road_network_routing.py
"""

from repro import load_dataset
from repro.algorithms import INF, bfs, cc_basic, cc_opt, msf, sssp


def main() -> None:
    graph = load_dataset("US", scale=0.6).with_random_weights(seed=3, low=1.0, high=10.0)
    print(f"road network: {graph}")

    # Reachability and hop distance.
    hops = bfs(graph, root=0)
    reached = [d for d in hops.values if d != INF]
    print(f"\nBFS from 0: eccentricity {int(max(reached))} hops "
          f"({hops.iterations} supersteps — frontier width stays tiny)")

    # Weighted shortest paths (travel times).
    times = sssp(graph, root=0)
    finite = [d for d in times.values if d != INF]
    print(f"SSSP: farthest vertex at weighted distance {max(finite):.1f}")

    # The paper's CC showcase: label propagation vs hook-and-jump.
    basic = cc_basic(graph)
    optimized = cc_opt(graph)
    assert basic.values == optimized.values
    print(f"\nCC-basic: {basic.iterations} iterations (≈ diameter)")
    print(f"CC-opt:   {optimized.iterations} iterations (hook + pointer-jump, "
          f"{basic.iterations / optimized.iterations:.0f}x fewer)")

    # Minimum spanning forest = cheapest maintenance backbone.
    forest = msf(graph)
    print(f"\nMSF: {forest.extra['num_edges']} road segments, "
          f"total weight {forest.extra['total_weight']:.1f}")


if __name__ == "__main__":
    main()
